"""Tests for the experiment harness (presets, runner plumbing, analytics)."""

import numpy as np
import pytest

import repro.experiments as ex
from repro import simdata as sd


class TestPresets:
    def test_registry(self):
        assert set(ex.PRESETS) == {"paper", "fast", "bench"}
        assert ex.get_preset("fast").name == "fast"

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            ex.get_preset("turbo")

    def test_paper_preset_faithful(self):
        p = ex.get_preset("paper")
        assert p.window == 510
        assert p.kernel_set == (5, 7, 9, 15, 25)
        assert p.n_trials == 3
        assert p.n_models == 5
        assert p.resnet_filters == (64, 128, 128)

    def test_scaled_override(self):
        p = ex.scaled(ex.get_preset("bench"), clf_epochs=1)
        assert p.clf_epochs == 1
        assert p.window == ex.get_preset("bench").window

    def test_ensemble_config_roundtrip(self):
        p = ex.get_preset("bench")
        cfg = p.ensemble_config(seed=7)
        assert cfg.kernel_set == p.kernel_set
        assert cfg.train.epochs == p.clf_epochs
        assert cfg.seed == 7

    def test_table3_cases_count(self):
        assert len(ex.TABLE3_CASES) == 11  # the paper's 11 rows


class TestRunnerPlumbing:
    @pytest.fixture(scope="class")
    def corpus(self):
        return ex.build_corpus("ukdale", ex.get_preset("bench"))

    def test_build_corpus_names(self):
        preset = ex.get_preset("bench")
        for name in ("ukdale", "refit", "edf_ev"):
            assert ex.build_corpus(name, preset).name == name
        with pytest.raises(KeyError):
            ex.build_corpus("dred", preset)

    def test_case_windows_splits_houses(self, corpus):
        case = ex.case_windows(corpus, "kettle", 64, split_seed=0)
        train_houses = set(case.train.house_id.split("+"))
        test_houses = set(case.test.house_id.split("+"))
        assert not train_houses & test_houses

    def test_case_spec(self, corpus):
        case = ex.case_windows(corpus, "kettle", 64)
        assert case.spec.avg_power_watts == 2000.0

    def test_evaluate_status_uses_clipping(self, corpus):
        case = ex.case_windows(corpus, "kettle", 64)
        ones = np.ones_like(case.test.strong)
        result = ex.evaluate_status("always-on", case, ones, 0.0, 0)
        # With everything predicted ON the recall is 1.
        assert result.recall == pytest.approx(1.0)
        assert result.method == "always-on"
        assert result.n_labels == 0

    def test_make_baseline_scales(self):
        with pytest.warns(DeprecationWarning):
            small = ex.make_baseline("TPNILM", "small")
            tiny = ex.make_baseline("TPNILM", "tiny")
            paper = ex.make_baseline("TPNILM", "paper")
        assert tiny.num_parameters() < small.num_parameters() < paper.num_parameters()

    def test_make_baseline_unknown(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                ex.make_baseline("LSTM", "small")
            with pytest.raises(KeyError):
                ex.make_baseline("TPNILM", "huge")
            # CamAL is registered but is not a baseline network: the
            # historical KeyError contract still holds.
            with pytest.raises(KeyError):
                ex.make_baseline("CamAL", "small")

    def test_make_baseline_shim_matches_registry(self):
        """Deprecated shim returns the exact network the registry builds."""
        from repro import api

        with pytest.warns(DeprecationWarning, match="make_baseline is deprecated"):
            legacy = ex.make_baseline("CRNN", "tiny", seed=3)
        fresh = api.create("crnn", scale="tiny", seed=3).network
        assert legacy.config == fresh.config
        old_state, new_state = legacy.state_dict(), fresh.state_dict()
        assert old_state.keys() == new_state.keys()
        for key in old_state:
            assert np.array_equal(old_state[key], new_state[key])


class TestComplexityTable:
    def test_rows_cover_all_models(self):
        result = ex.run_complexity_table()
        models = {r.model for r in result.rows}
        assert len(models) == 6
        for row in result.rows:
            assert row.relative_error < 0.10  # within 10% of Table II

    def test_render_contains_values(self):
        text = ex.run_complexity_table().render()
        assert "TransNILM" in text and "Table II" in text


class TestCostAnalysis:
    def test_ordering_matches_figure9(self):
        result = ex.run_cost_analysis(n_households=1000)
        dollars = [c.dollars_per_household for c in result.per_household]
        assert dollars[0] > dollars[1] > dollars[2]
        assert result.storage_ratio == pytest.approx(6.0, rel=0.01)

    def test_storage_curve_monotone(self):
        result = ex.run_cost_analysis()
        strong_tb = [s for _, s, _ in result.storage_curve]
        assert strong_tb == sorted(strong_tb)

    def test_render(self):
        assert "Fig. 9" in ex.run_cost_analysis().render()


class TestReporting:
    def test_render_table_alignment(self):
        text = ex.render_table(["a", "bb"], [[1, 2.5], ["x", float("nan")]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert "-" in lines[3].split("|")[1]  # NaN renders as dash

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            ex.render_table(["a"], [[1, 2]])

    def test_render_series(self):
        text = ex.render_series("curve", [1, 2], [0.5, 0.25])
        assert "(1, 0.500)" in text

    def test_render_dict(self):
        text = ex.render_dict("title", {"key": 1.0})
        assert "title" in text and "key" in text


class TestWhiteNoiseWorkload:
    def test_shapes_match_paper_protocol(self):
        x, s = ex.white_noise_households(3, series_length=17_520)
        assert x.shape == (3, 17_520)
        assert s.shape == (3, 17_520)
        assert set(np.unique(s)) <= {0.0, 1.0}

    def test_deterministic(self):
        x1, _ = ex.white_noise_households(2, 100, seed=5)
        x2, _ = ex.white_noise_households(2, 100, seed=5)
        assert np.array_equal(x1, x2)
