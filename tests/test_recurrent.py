"""Tests for GRU cells and sequence layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestGRUCell:
    def test_output_shape(self):
        cell = nn.GRUCell(4, 6, seed=0)
        h = cell(Tensor(np.zeros((3, 4), dtype=np.float32)), Tensor(np.zeros((3, 6), dtype=np.float32)))
        assert h.shape == (3, 6)

    def test_matches_manual_step(self):
        """The cell output must match a hand-computed GRU step."""
        cell = nn.GRUCell(2, 3, seed=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2)).astype(np.float32)
        h = rng.normal(size=(1, 3)).astype(np.float32)

        w_ih, w_hh = cell.weight_ih.data, cell.weight_hh.data
        b_ih, b_hh = cell.bias_ih.data, cell.bias_hh.data
        gx = x @ w_ih.T + b_ih
        gh = h @ w_hh.T + b_hh

        def sig(v):
            return 1 / (1 + np.exp(-v))

        r = sig(gx[:, 0:3] + gh[:, 0:3])
        z = sig(gx[:, 3:6] + gh[:, 3:6])
        n = np.tanh(gx[:, 6:9] + r * gh[:, 6:9])
        expected = (1 - z) * n + z * h

        out = cell(Tensor(x), Tensor(h))
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_zero_update_gate_keeps_candidate(self):
        # With all weights zero, z = 0.5 and n = 0 so h' = 0.5 * h.
        cell = nn.GRUCell(2, 2, seed=0)
        for p in (cell.weight_ih, cell.weight_hh):
            p.data[...] = 0.0
        h = Tensor(np.ones((1, 2), dtype=np.float32))
        out = cell(Tensor(np.ones((1, 2), dtype=np.float32)), h)
        assert np.allclose(out.data, 0.5, atol=1e-6)


class TestGRULayer:
    def test_unidirectional_shape(self):
        gru = nn.GRU(3, 5, seed=0)
        out = gru(Tensor(np.zeros((2, 7, 3), dtype=np.float32)))
        assert out.shape == (2, 7, 5)

    def test_bidirectional_shape(self):
        gru = nn.GRU(3, 5, bidirectional=True, seed=0)
        out = gru(Tensor(np.zeros((2, 7, 3), dtype=np.float32)))
        assert out.shape == (2, 7, 10)

    def test_rejects_2d_input(self):
        gru = nn.GRU(3, 5)
        with pytest.raises(ValueError):
            gru(Tensor(np.zeros((2, 3), dtype=np.float32)))

    def test_causal_in_forward_direction(self):
        """Changing a later timestep must not affect earlier outputs."""
        gru = nn.GRU(1, 4, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 6, 1)).astype(np.float32)
        base = gru(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5, 0] += 10.0
        changed = gru(Tensor(x2)).data
        assert np.allclose(base[0, :5], changed[0, :5], atol=1e-6)
        assert not np.allclose(base[0, 5], changed[0, 5])

    def test_backward_direction_sees_future(self):
        gru = nn.GRU(1, 4, bidirectional=True, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 6, 1)).astype(np.float32)
        base = gru(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5, 0] += 10.0
        changed = gru(Tensor(x2)).data
        # The backward half (last 4 features) of t=0 must change.
        assert not np.allclose(base[0, 0, 4:], changed[0, 0, 4:])

    def test_gradients_flow_to_input_and_weights(self):
        gru = nn.GRU(2, 3, bidirectional=True, seed=0)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 2)).astype(np.float32), requires_grad=True)
        gru(x).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0
        assert gru.cell_fw.weight_ih.grad is not None
        assert gru.cell_bw.weight_hh.grad is not None

    def test_deterministic_given_seed(self):
        a, b = nn.GRU(2, 3, seed=4), nn.GRU(2, 3, seed=4)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 2)).astype(np.float32))
        assert np.allclose(a(x).data, b(x).data)
