"""The shared estimator contract, enforced for every registered model.

One parameterized suite proves that CamAL and all six baselines speak the
same :class:`repro.api.WeakLocalizer` language: fit on a tiny case,
predict with the right shapes/dtypes, round-trip through save/load with
bit-identical predictions, and serve end-to-end through the
:class:`repro.serving.InferenceEngine`.
"""

import os

import numpy as np
import pytest

from repro import api
from repro.serving import EngineConfig, InferenceEngine
from repro.training import TrainConfig

WINDOW = 64
ALL_MODELS = api.available_models()


def _tiny_case(seed: int = 0, n_train: int = 24, n_val: int = 8):
    """Deterministic toy windows with square-pulse 'activations'."""
    rng = np.random.default_rng(seed)

    def windows(n):
        x = rng.normal(0.3, 0.05, size=(n, WINDOW)).astype(np.float32)
        strong = np.zeros((n, WINDOW), dtype=np.float32)
        weak = np.zeros(n, dtype=np.float32)
        for i in range(0, n, 2):  # every other window holds an activation
            start = int(rng.integers(4, WINDOW - 12))
            x[i, start : start + 8] += 2.0
            strong[i, start : start + 8] = 1.0
            weak[i] = 1.0
        return x, weak, strong

    return windows(n_train), windows(n_val), windows(6)


class _WindowSet:
    """Minimal ``WindowSet``-like carrier for ``labels_for``."""

    def __init__(self, weak, strong):
        self.weak = weak
        self.strong = strong


def _fitted(name: str) -> api.WeakLocalizer:
    (x_tr, w_tr, s_tr), (x_va, w_va, s_va), _ = _tiny_case()
    est = api.create(
        name,
        scale="tiny",
        seed=0,
        train=TrainConfig(epochs=1, batch_size=8, seed=0),
    )
    est.fit(
        x_tr,
        est.labels_for(_WindowSet(w_tr, s_tr)),
        x_va,
        est.labels_for(_WindowSet(w_va, s_va)),
    )
    return est


@pytest.fixture(scope="module", params=ALL_MODELS)
def fitted(request):
    return request.param, _fitted(request.param)


class TestContract:
    def test_registry_covers_camal_and_six_baselines(self):
        assert set(ALL_MODELS) == {
            "camal",
            "crnn",
            "crnn-weak",
            "bigru",
            "unet-nilm",
            "tpnilm",
            "transnilm",
        }

    def test_every_model_has_all_scales(self):
        for name in ALL_MODELS:
            assert set(api.get_entry(name).scales) == set(api.SCALE_NAMES)

    def test_fit_bookkeeping(self, fitted):
        name, est = fitted
        (x_tr, w_tr, s_tr), _, _ = _tiny_case()
        assert est.is_fitted
        assert est.train_seconds_ > 0
        expected = len(w_tr) if est.supervision == "weak" else s_tr.size
        assert est.n_labels_ == expected

    def test_detect_shapes_and_range(self, fitted):
        _, est = fitted
        _, _, (x_te, _, _) = _tiny_case()
        proba = est.detect(x_te)
        assert proba.shape == (len(x_te),)
        assert proba.dtype == np.float32
        assert np.all((proba >= 0.0) & (proba <= 1.0))

    def test_localize_output_shapes_and_dtypes(self, fitted):
        _, est = fitted
        _, _, (x_te, _, _) = _tiny_case()
        out = est.localize(x_te)
        n, length = x_te.shape
        assert out.detection_proba.shape == (n,)
        assert out.detected.shape == (n,)
        assert out.detected.dtype == bool
        for arr in (out.cam, out.soft_status, out.status):
            assert arr.shape == (n, length)
            assert arr.dtype == np.float32
        assert set(np.unique(out.status)).issubset({0.0, 1.0})
        assert np.all((out.soft_status >= 0.0) & (out.soft_status <= 1.0))

    def test_predict_status_matches_localize(self, fitted):
        _, est = fitted
        _, _, (x_te, _, _) = _tiny_case()
        assert np.array_equal(est.predict_status(x_te), est.localize(x_te).status)

    def test_save_load_roundtrip_bit_identical(self, fitted, tmp_path):
        name, est = fitted
        _, _, (x_te, _, _) = _tiny_case()
        before = est.localize(x_te)
        est.save(str(tmp_path))
        assert os.path.exists(tmp_path / "manifest.json")

        reloaded = api.load_estimator(str(tmp_path))
        assert reloaded.name == name
        assert reloaded.supervision == est.supervision
        assert reloaded.is_fitted
        assert reloaded.n_labels_ == est.n_labels_
        after = reloaded.localize(x_te)
        assert np.array_equal(before.detection_proba, after.detection_proba)
        assert np.array_equal(before.detected, after.detected)
        assert np.array_equal(before.soft_status, after.soft_status)
        assert np.array_equal(before.status, after.status)

    def test_weaklocalizer_load_classmethod(self, fitted, tmp_path):
        _, est = fitted
        est.save(str(tmp_path))
        reloaded = api.WeakLocalizer.load(str(tmp_path))
        assert isinstance(reloaded, api.WeakLocalizer)

    def test_plan_replay_equivalent_across_backends(self, fitted, monkeypatch):
        """Traced-plan serving must match the untraced module loop on every
        conv backend — and repeated planned calls must be bit-identical,
        or the engine's LRU window cache would drift from fresh compute."""
        from repro import nn

        _, est = fitted
        _, _, (x_te, _, _) = _tiny_case()
        for backend_name in ("reference", "im2col", "fft"):
            with nn.backend.use_backend(backend_name):
                monkeypatch.delenv("REPRO_NN_PLAN", raising=False)
                planned = est.localize(x_te)  # traces (then validates) a plan
                replayed = est.localize(x_te)  # replays it
                monkeypatch.setenv("REPRO_NN_PLAN", "off")
                loop = est.localize(x_te)  # untraced module dispatch
                monkeypatch.delenv("REPRO_NN_PLAN")
            assert np.array_equal(planned.detection_proba, replayed.detection_proba)
            assert np.array_equal(planned.soft_status, replayed.soft_status)
            assert np.array_equal(planned.status, replayed.status)
            np.testing.assert_allclose(
                planned.detection_proba, loop.detection_proba, atol=1e-5
            )
            np.testing.assert_allclose(
                planned.soft_status, loop.soft_status, atol=1e-5
            )
            # Binary status may only differ where the soft score sits within
            # float tolerance of the 0.5 threshold.
            disagree = planned.status != loop.status
            assert np.all(np.abs(loop.soft_status[disagree] - 0.5) < 1e-4)

    def test_serves_through_inference_engine(self, fitted):
        name, est = fitted
        series = (
            np.random.default_rng(5).random(200).astype(np.float32) * 2500.0
        )
        engine = InferenceEngine(EngineConfig(window=WINDOW, stride=WINDOW // 2))
        engine.register(name, est)
        result = engine.run(series)
        status = result.status(name)
        assert status.shape == series.shape
        assert set(np.unique(status)).issubset({0.0, 1.0})

    def test_engine_load_roundtrip(self, fitted, tmp_path):
        name, est = fitted
        est.save(str(tmp_path))
        series = np.random.default_rng(6).random(160).astype(np.float32) * 2000.0
        direct = InferenceEngine(EngineConfig(window=WINDOW)).register(name, est)
        loaded = InferenceEngine(EngineConfig(window=WINDOW)).load(name, str(tmp_path))
        assert np.array_equal(
            direct.run(series).status(name), loaded.run(series).status(name)
        )


class TestRegistryErrors:
    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            api.create("lstm")

    def test_unknown_scale(self):
        with pytest.raises(KeyError, match="unknown scale"):
            api.create("crnn", scale="huge")

    def test_duplicate_registration_rejected(self):
        entry = api.get_entry("crnn")
        with pytest.raises(ValueError, match="already registered"):
            api.register(
                "crnn",
                config_cls=entry.config_cls,
                factory=entry.factory,
                scales=entry.scales,
                supervision=entry.supervision,
            )

    def test_legacy_spellings_canonicalize(self):
        for legacy, canonical in api.LEGACY_NAMES.items():
            assert api.canonical_name(legacy) == canonical
            assert api.get_entry(legacy).name == canonical

    def test_unfitted_camal_raises_on_predict(self):
        est = api.create("camal", scale="tiny")
        with pytest.raises(api.NotFittedError):
            est.detect(np.zeros((2, WINDOW), dtype=np.float32))

    def test_unfitted_seq2seq_save_raises(self, tmp_path):
        est = api.create("bigru", scale="tiny")
        with pytest.raises(api.NotFittedError):
            est.save(str(tmp_path))

    def test_camal_knobs_write_through_to_pipeline(self):
        """Mutating a fitted CamALLocalizer's serving knobs must reach the
        wrapped pipeline, or engine stitching and window status diverge."""
        est = _fitted("camal")
        est.status_threshold = 0.9
        est.power_gate_watts = 123.0
        assert est.pipeline.status_threshold == 0.9
        assert est.pipeline.power_gate_watts == 123.0


class TestGenericPipelines:
    def test_mixed_fleet_roundtrip(self, tmp_path):
        fleet = {"kettle": _fitted("camal"), "dishwasher": _fitted("tpnilm")}
        api.save_pipelines(fleet, str(tmp_path))
        loaded = api.load_pipelines(str(tmp_path))
        assert set(loaded) == {"kettle", "dishwasher"}
        assert isinstance(loaded["kettle"], api.CamALLocalizer)
        assert isinstance(loaded["dishwasher"], api.Seq2SeqLocalizer)

    def test_strays_skipped_and_reported(self, tmp_path):
        api.save_pipelines({"kettle": _fitted("crnn-weak")}, str(tmp_path))
        (tmp_path / "notes.txt").write_text("not a pipeline")
        (tmp_path / "empty_dir").mkdir()
        with pytest.warns(UserWarning, match="skipped 2"):
            loaded = api.load_pipelines(str(tmp_path))
        assert set(loaded) == {"kettle"}

    def test_corrupt_manifest_skipped_and_reported(self, tmp_path):
        api.save_pipelines(
            {"kettle": _fitted("bigru"), "oven": _fitted("tpnilm")}, str(tmp_path)
        )
        (tmp_path / "oven" / "manifest.json").write_text("{ not json")
        with pytest.warns(UserWarning, match="skipped 1"):
            loaded = api.load_pipelines(str(tmp_path))
        assert set(loaded) == {"kettle"}

    def test_legacy_core_loader_skips_format2_directories(self, tmp_path):
        from repro.core import load_pipelines as core_load_pipelines

        api.save_pipelines(
            {"kettle": _fitted("camal"), "ev": _fitted("tpnilm")}, str(tmp_path)
        )
        with pytest.warns(UserWarning, match="skipped 1"):
            loaded = core_load_pipelines(str(tmp_path))
        assert set(loaded) == {"kettle"}
