"""Tests for result analytics that need no training (sweep/correlation
post-processing, rendering helpers)."""

import numpy as np
import pytest

from repro.experiments.correlation import CorrelationResult
from repro.experiments.label_sweep import LabelSweepResult, SweepPoint
from repro.experiments.reporting import format_cell, render_series, render_table


class TestLabelFactorAnalytics:
    def _sweep(self, camal_points, strong_points):
        result = LabelSweepResult(corpus="x", appliance="y")
        result.curves["CamAL"] = [SweepPoint(n, f) for n, f in camal_points]
        result.curves["TPNILM"] = [SweepPoint(n, f) for n, f in strong_points]
        return result

    def test_factor_computed_at_crossing(self):
        sweep = self._sweep(
            camal_points=[(10, 0.5), (100, 0.8)],
            strong_points=[(1000, 0.3), (10000, 0.85)],
        )
        factors = sweep.label_factor_to_match_camal()
        # CamAL best F1 = 0.8 at 100 labels; TPNILM reaches >= 0.8 at 10000.
        assert factors["TPNILM"] == pytest.approx(100.0)

    def test_factor_inf_when_never_reached(self):
        sweep = self._sweep(
            camal_points=[(10, 0.9)], strong_points=[(1000, 0.5), (10000, 0.7)]
        )
        assert sweep.label_factor_to_match_camal()["TPNILM"] == float("inf")

    def test_empty_camal_curve(self):
        result = LabelSweepResult(corpus="x", appliance="y")
        result.curves["TPNILM"] = [SweepPoint(10, 0.5)]
        assert result.label_factor_to_match_camal() == {}

    def test_render_contains_all_methods(self):
        sweep = self._sweep([(10, 0.5)], [(100, 0.4)])
        text = sweep.render()
        assert "CamAL" in text and "TPNILM" in text


class TestCorrelationAnalytics:
    def test_pearson_of_perfect_line(self):
        points = [("c", "a", x / 10, x / 10) for x in range(1, 8)]
        result = CorrelationResult(points=points, cubic_coefficients=None)
        assert result.pearson() == pytest.approx(1.0)

    def test_pearson_degenerate_is_zero(self):
        points = [("c", "a", 0.5, 0.1), ("c", "b", 0.5, 0.9)]
        result = CorrelationResult(points=points, cubic_coefficients=None)
        assert result.pearson() == 0.0

    def test_predict_requires_fit(self):
        result = CorrelationResult(points=[], cubic_coefficients=None)
        with pytest.raises(RuntimeError):
            result.predict(0.9)

    def test_predict_evaluates_polynomial(self):
        coefs = np.array([0.0, 0.0, 2.0, 1.0])  # 2x + 1
        result = CorrelationResult(points=[], cubic_coefficients=coefs)
        assert result.predict(3.0) == pytest.approx(7.0)

    def test_render_mentions_pearson(self):
        points = [("c", "a", 0.9, 0.8), ("c", "b", 0.6, 0.3)]
        text = CorrelationResult(points=points, cubic_coefficients=None).render()
        assert "pearson" in text


class TestFormatting:
    def test_format_cell_nan_dash(self):
        assert format_cell(float("nan")) == "-"

    def test_format_cell_large_float_no_decimals(self):
        assert format_cell(12345.678) == "12346"

    def test_format_cell_precision(self):
        assert format_cell(0.56789, precision=2) == "0.57"

    def test_format_cell_passthrough_strings_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"

    def test_render_table_title_optional(self):
        with_title = render_table(["h"], [[1]], title="T")
        without = render_table(["h"], [[1]])
        assert with_title.startswith("T\n")
        assert not without.startswith("T")

    def test_render_series_pairs(self):
        assert render_series("s", [], []) == "s: "
