"""Tests for Module containers, state dicts and serialization."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def small_net(seed=0):
    return nn.Sequential(
        nn.Linear(4, 8, seed=seed),
        nn.ReLU(),
        nn.BatchNorm1d(8),
        nn.Linear(8, 2, seed=seed + 1),
    )


class TestModuleTraversal:
    def test_parameters_collected_recursively(self):
        net = small_net()
        # 2 Linear layers (w+b each) + BN (gamma+beta) = 6 tensors.
        assert len(net.parameters()) == 6

    def test_named_parameters_unique(self):
        names = [name for name, _ in small_net().named_parameters()]
        assert len(names) == len(set(names))

    def test_named_buffers_include_running_stats(self):
        names = [name for name, _ in small_net().named_buffers()]
        assert any("running_mean" in n for n in names)
        assert any("running_var" in n for n in names)

    def test_modules_iterator(self):
        net = small_net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert "Sequential" in kinds and "Linear" in kinds and "BatchNorm1d" in kinds

    def test_num_parameters(self):
        net = nn.Linear(10, 5)
        assert net.num_parameters() == 10 * 5 + 5


class TestTrainEval:
    def test_train_eval_propagates(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = small_net()
        out = net(Tensor(np.ones((3, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = small_net(seed=0), small_net(seed=99)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 4)).astype(np.float32))
        net1.eval(), net2.eval()
        assert not np.allclose(net1(x).data, net2(x).data)
        net2.load_state_dict(net1.state_dict())
        assert np.allclose(net1(x).data, net2(x).data)

    def test_state_dict_is_a_copy(self):
        net = small_net()
        state = net.state_dict()
        first = next(iter(state))
        state[first][...] = 1234.0
        assert not np.allclose(dict(net.named_parameters()).get(first, Tensor(0)).data, 1234.0)

    def test_missing_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError, match="missing"):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self):
        net = small_net()
        state = net.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError, match="unexpected"):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = small_net()
        state = net.state_dict()
        key = next(k for k in state if k.endswith("weight"))
        state[key] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_buffers_roundtrip(self):
        net1 = small_net()
        net1.train()
        x = Tensor(np.random.default_rng(1).normal(size=(16, 4)).astype(np.float32))
        net1(x)  # updates BN running stats
        net2 = small_net(seed=5)
        net2.load_state_dict(net1.state_dict())
        bn1 = [b for _, b in net1.named_buffers()]
        bn2 = [b for _, b in net2.named_buffers()]
        for a, b in zip(bn1, bn2):
            assert np.allclose(a, b)


class TestSerialization:
    def test_save_load_file(self, tmp_path):
        net1, net2 = small_net(0), small_net(7)
        path = os.path.join(tmp_path, "model.npz")
        nn.save_state(net1, path)
        nn.load_state(net2, path)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4)).astype(np.float32))
        net1.eval(), net2.eval()
        assert np.allclose(net1(x).data, net2(x).data)

    def test_load_appends_npz_suffix(self, tmp_path):
        net = small_net()
        path = os.path.join(tmp_path, "weights.npz")
        nn.save_state(net, path)
        nn.load_state(net, os.path.join(tmp_path, "weights"))  # no suffix


class TestContainers:
    def test_sequential_indexing(self):
        net = small_net()
        assert isinstance(net[0], nn.Linear)
        assert len(net) == 4

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2, seed=i) for i in range(3)])
        assert len(ml) == 3
        assert isinstance(ml[1], nn.Linear)
        # parameters from all items are registered
        assert len([p for p in ml.parameters()]) == 6

    def test_module_list_append(self):
        ml = nn.ModuleList()
        ml.append(nn.Linear(2, 2))
        assert len(ml) == 1
