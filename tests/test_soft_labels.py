"""Tests for soft-label generation and mixing (RQ5)."""

import numpy as np
import pytest

from repro.core import (
    CamAL,
    EnsembleConfig,
    generate_soft_labels,
    mix_strong_and_soft,
    train_ensemble,
)
from repro.training import TrainConfig


@pytest.fixture(scope="module")
def trained_camal():
    rng = np.random.default_rng(0)
    n, w = 60, 32
    x = rng.random((n, w)).astype(np.float32) * 0.2
    y = (rng.random(n) > 0.5).astype(np.float32)
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, w - 4)
        x[i, start : start + 3] += 2.0
    config = EnsembleConfig(
        kernel_set=(3,),
        n_trials=1,
        n_models=1,
        filters=(4, 8, 8),
        train=TrainConfig(epochs=4, batch_size=16, patience=0),
        seed=0,
    )
    ensemble, _ = train_ensemble(x, y, x, y, config)
    return CamAL(ensemble), x


class TestGeneration:
    def test_labels_match_localization(self, trained_camal):
        camal, x = trained_camal
        soft = generate_soft_labels(camal, x)
        assert len(soft) == len(x)
        expected = camal.localize(x).status
        assert np.array_equal(soft.soft_status, expected)

    def test_confidence_filter_drops_uncertain(self, trained_camal):
        camal, x = trained_camal
        all_windows = generate_soft_labels(camal, x, min_confidence=0.0)
        confident = generate_soft_labels(camal, x, min_confidence=0.2)
        assert len(confident) <= len(all_windows)
        if len(confident):
            proba = confident.detection_proba
            assert np.all((proba >= 0.8) | (proba <= 0.2))


class TestMixing:
    def test_concatenates(self, trained_camal):
        camal, x = trained_camal
        soft = generate_soft_labels(camal, x[:10])
        xm, sm = mix_strong_and_soft(x[10:20], np.zeros((10, 32), np.float32), soft)
        assert len(xm) == 20
        assert sm.shape == (20, 32)

    def test_empty_strong_side(self, trained_camal):
        camal, x = trained_camal
        soft = generate_soft_labels(camal, x[:5])
        xm, sm = mix_strong_and_soft(
            np.zeros((0, 32), np.float32), np.zeros((0, 32), np.float32), soft
        )
        assert len(xm) == 5

    def test_empty_soft_side(self, trained_camal):
        camal, x = trained_camal
        soft = generate_soft_labels(camal, x[:0])
        xm, sm = mix_strong_and_soft(x[:3], np.zeros((3, 32), np.float32), soft)
        assert len(xm) == 3

    def test_length_mismatch_raises(self, trained_camal):
        camal, x = trained_camal
        soft = generate_soft_labels(camal, x[:5])
        with pytest.raises(ValueError):
            mix_strong_and_soft(np.zeros((2, 16), np.float32), np.zeros((2, 16), np.float32), soft)
