"""End-to-end integration tests: full pipelines at miniature scale.

These train real models on simulated corpora; each is kept tiny so the
whole module runs in about a minute.
"""

import numpy as np
import pytest

import repro.experiments as ex
from repro import simdata as sd
from repro.experiments import scaled
from repro.metrics import f1_score


@pytest.fixture(scope="module")
def preset():
    # Even smaller than "bench" to keep integration tests quick.
    return scaled(
        ex.get_preset("bench"),
        corpus_days={"ukdale": 4.0, "refit": 2.0, "ideal": 2.0, "edf_ev": 20.0, "edf_weak": 15.0},
        seq2seq_epochs=4,
    )


@pytest.fixture(scope="module")
def kettle_case(preset):
    corpus = ex.build_corpus("ukdale", preset)
    return ex.case_windows(corpus, "kettle", preset.window, split_seed=0)


class TestCamALEndToEnd:
    def test_trains_and_localizes_above_chance(self, kettle_case, preset):
        result, camal = ex.run_camal(kettle_case, preset, seed=0)
        assert result.f1 > 0.3  # chance level for ~1% duty cycle is ~0.02
        assert result.balanced_accuracy > 0.7
        assert result.n_labels == len(kettle_case.train.weak)
        assert result.train_seconds > 0

    def test_energy_metrics_populated(self, kettle_case, preset):
        result, _ = ex.run_camal(kettle_case, preset, seed=1)
        assert np.isfinite(result.mae_watts)
        assert np.isfinite(result.rmse_watts)
        assert 0.0 <= result.matching_ratio <= 1.0

    def test_power_gate_improves_precision(self, kettle_case, preset):
        gated, _ = ex.run_camal(kettle_case, preset, seed=0, power_gate=True)
        literal, _ = ex.run_camal(kettle_case, preset, seed=0, power_gate=False)
        assert gated.precision >= literal.precision

    def test_localization_output_consistency(self, kettle_case, preset):
        _, camal = ex.run_camal(kettle_case, preset, seed=0)
        out = camal.localize(kettle_case.test.inputs)
        # Detection probability gates localization: undetected -> all zero.
        undetected = out.detected == 0
        assert out.status[undetected].sum() == 0
        # Soft scores bounded.
        assert np.all((out.soft_status >= 0) & (out.soft_status <= 1))


class TestBaselinesEndToEnd:
    @pytest.mark.parametrize("name", ["TPNILM", "CRNN-weak"])
    def test_baseline_runs_and_scores(self, kettle_case, preset, name):
        result = ex.run_model(name, kettle_case, preset, seed=0)
        assert 0.0 <= result.f1 <= 1.0
        expected_labels = (
            len(kettle_case.train.weak)
            if name == "CRNN-weak"
            else kettle_case.train.strong.size
        )
        assert result.n_labels == expected_labels

    def test_strong_labels_count_is_w_per_window(self, kettle_case, preset):
        result = ex.run_model("UNet-NILM", kettle_case, preset, seed=0)
        assert result.n_labels == len(kettle_case.train) * preset.window

    def test_run_baseline_shim_warns_and_matches_run_model(
        self, kettle_case, preset
    ):
        """The deprecated entry point routes through the registry with
        identical results."""
        with pytest.warns(DeprecationWarning, match="run_baseline is deprecated"):
            legacy = ex.run_baseline("TPNILM", kettle_case, preset, seed=0)
        fresh = ex.run_model("TPNILM", kettle_case, preset, seed=0)
        assert legacy.f1 == fresh.f1
        assert legacy.precision == fresh.precision
        assert legacy.recall == fresh.recall
        assert legacy.mae_watts == fresh.mae_watts
        assert legacy.n_labels == fresh.n_labels


class TestWeakTableEndToEnd:
    def test_camal_beats_crnn_weak_on_average(self, preset):
        table = ex.run_weak_table(preset, cases=[("ukdale", "kettle")], seed=0)
        avg = table.averages()
        assert avg["CamAL"]["F1"] > avg["CRNN-weak"]["F1"]
        text = table.render()
        assert "kettle" in text

    def test_result_rows_aligned(self, preset):
        table = ex.run_weak_table(preset, cases=[("ukdale", "dishwasher")], seed=0)
        assert len(table.camal) == len(table.crnn_weak) == 1
        assert table.camal[0].appliance == table.crnn_weak[0].appliance


class TestLabelSweepEndToEnd:
    def test_curves_and_factors(self, preset):
        sweep = ex.run_label_sweep(
            "ukdale", "kettle", preset, methods=["CamAL", "TPNILM"], n_points=2, seed=0
        )
        assert set(sweep.curves) == {"CamAL", "TPNILM"}
        camal_curve = sweep.curves["CamAL"]
        tp_curve = sweep.curves["TPNILM"]
        # Strong supervision consumes w labels per window.
        assert tp_curve[0].n_labels == camal_curve[0].n_labels * preset.window
        factors = sweep.label_factor_to_match_camal()
        assert "TPNILM" in factors


class TestPossessionEndToEnd:
    def test_ev_possession_pipeline(self, preset):
        weak_corpus = ex.build_corpus("edf_weak", preset)
        ev_corpus = ex.build_corpus("edf_ev", preset)
        result = ex.run_possession_pipeline(
            weak_corpus, ev_corpus, "electric_vehicle", preset,
            window_candidates=(preset.window,), seed=0,
        )
        assert result.localization.f1 > 0.3
        assert result.localization.n_labels < 50  # households, not windows!
        assert result.camal is not None

    def test_soft_label_augmentation(self, preset):
        weak_corpus = ex.build_corpus("edf_weak", preset)
        ev_corpus = ex.build_corpus("edf_ev", preset)
        poss = ex.run_possession_pipeline(
            weak_corpus, ev_corpus, "electric_vehicle", preset,
            window_candidates=(preset.window,), seed=0,
        )
        fig10 = ex.run_figure10(
            poss.camal, ev_corpus, preset, methods=["TPNILM"], mixes=((0, 4), (2, 2)),
        )
        points = fig10.curves[0].points
        assert len(points) == 2
        assert all(np.isfinite(p[2]) for p in points)


class TestAblationsEndToEnd:
    def test_attention_ablation_direction(self, preset):
        result = ex.run_design_ablation(
            preset, corpus_name="ukdale", appliances=["kettle"], seed=0
        )
        by_name = {r.variant: r for r in result.rows}
        assert by_name["CamAL"].f1 >= by_name["w/o Attention module"].f1 - 0.05

    def test_ensemble_size_sweep(self, preset):
        result = ex.run_ensemble_size(
            preset, corpus_name="ukdale", appliances=["kettle"], sizes=(1, 2), seed=0
        )
        assert len(result.points) == 2
        assert all(0 <= f1 <= 1 for _, f1, _ in result.points)

    def test_window_length_sweep(self, preset):
        result = ex.run_window_length(
            "ukdale", "kettle", preset, train_windows=(32, 64), seed=0
        )
        assert len(result.points) == 2


class TestScalabilityEndToEnd:
    def test_throughput_measures_all_methods(self, preset):
        result = ex.run_throughput(
            preset, input_lengths=(64,), methods=["CamAL", "TPNILM"], n_windows=4
        )
        assert result.series["CamAL"][0][1] > 0
        assert result.series["TPNILM"][0][1] > 0

    def test_epoch_times_scale_with_households(self, preset):
        result = ex.run_epoch_times(
            preset,
            household_counts=(1, 2),
            methods=["TPNILM"],
            series_length=preset.window * 4,
            seed=0,
        )
        points = result.series["TPNILM"]
        assert len(points) == 2
        assert points[1][1] > 0
