"""Tests for optimizers and LR schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Tensor(np.array([start], dtype=np.float32), requires_grad=True)


def step_quadratic(param, optimizer, steps=100):
    for _ in range(steps):
        loss = (param * param).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return abs(param.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(p, nn.SGD([p], lr=0.1)) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        r_plain = step_quadratic(p1, nn.SGD([p1], lr=0.01), steps=50)
        r_mom = step_quadratic(p2, nn.SGD([p2], lr=0.01, momentum=0.9), steps=50)
        assert r_mom < r_plain

    def test_weight_decay_shrinks_weights(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        opt.step()  # no grad yet: must not crash or move
        assert p.data[0] == pytest.approx(5.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert step_quadratic(p, nn.Adam([p], lr=0.3), steps=200) < 1e-2

    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the very first step ~= lr * sign(grad).
        p = quadratic_param(1.0)
        opt = nn.Adam([p], lr=0.5)
        (p * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(0.5, abs=1e-3)

    def test_adamw_decay_decoupled(self):
        p = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        opt = nn.AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        # Pure decay: p -= lr * wd * p = 2 - 0.1*0.5*2 = 1.9
        assert p.data[0] == pytest.approx(1.9, abs=1e-4)


class TestOptimizerBase:
    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_zero_grad(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad()
        assert p.grad is None

    def test_clip_grad_norm(self):
        p = Tensor(np.array([1.0, 1.0], dtype=np.float32), requires_grad=True)
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.array([3.0, 4.0], dtype=np.float32)  # norm 5
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, abs=1e-5)

    def test_clip_noop_when_under(self):
        p = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = nn.SGD([p], lr=0.1)
        p.grad = np.array([0.5], dtype=np.float32)
        opt.clip_grad_norm(1.0)
        assert p.grad[0] == pytest.approx(0.5)


class TestOptimizerStateDict:
    """Checkpointed optimizer state must resume the exact trajectory."""

    def _train(self, param, optimizer, steps):
        for _ in range(steps):
            loss = (param * param).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

    @pytest.mark.parametrize("factory", [
        lambda p: nn.SGD([p], lr=0.05, momentum=0.9, weight_decay=1e-3),
        lambda p: nn.Adam([p], lr=0.1, weight_decay=1e-3),
        lambda p: nn.AdamW([p], lr=0.1, weight_decay=1e-2),
    ])
    def test_roundtrip_resumes_identically(self, factory):
        reference = quadratic_param()
        opt_ref = factory(reference)
        self._train(reference, opt_ref, 10)

        split = quadratic_param()
        opt_a = factory(split)
        self._train(split, opt_a, 4)
        state = opt_a.state_dict()

        resumed = Tensor(split.data.copy(), requires_grad=True)
        opt_b = factory(resumed)
        opt_b.load_state_dict(state)
        self._train(resumed, opt_b, 6)
        assert np.array_equal(reference.data, resumed.data)

    def test_adam_step_count_in_state(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        self._train(p, opt, 3)
        assert opt.state_dict()["step"] == 3

    def test_lr_travels_with_state(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.5)
        opt.lr = 0.125  # e.g. a scheduler decayed it
        fresh = nn.SGD([quadratic_param()], lr=0.5)
        fresh.load_state_dict(opt.state_dict())
        assert fresh.lr == pytest.approx(0.125)

    def test_buffer_count_mismatch_rejected(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        state = opt.state_dict()
        state["m"] = []
        with pytest.raises(ValueError, match="buffers"):
            opt.load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        state = opt.state_dict()
        state["m"] = [np.zeros((2, 2), dtype=np.float32)]
        with pytest.raises(ValueError, match="shape"):
            opt.load_state_dict(state)


class TestSchedulers:
    def test_step_lr(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_annealing_reaches_min(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=10, eta_min=0.05)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.05, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=1.0)
        sched = nn.CosineAnnealingLR(opt, t_max=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_warmup_cosine_ramps_then_decays(self):
        opt = nn.SGD([quadratic_param()], lr=1.0)
        sched = nn.WarmupCosineLR(opt, t_max=10, warmup_epochs=4, eta_min=0.1)
        # Warmup applies immediately: epoch 0 runs at base_lr / warmup.
        assert opt.lr == pytest.approx(0.25)
        lrs = []
        for _ in range(10):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[:3] == pytest.approx([0.5, 0.75, 1.0])  # linear ramp
        assert all(a >= b for a, b in zip(lrs[3:], lrs[4:]))  # cosine decay
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)  # reaches the floor

    def test_warmup_zero_matches_cosine(self):
        opt_a = nn.SGD([quadratic_param()], lr=1.0)
        opt_b = nn.SGD([quadratic_param()], lr=1.0)
        warm = nn.WarmupCosineLR(opt_a, t_max=6, warmup_epochs=0, eta_min=0.05)
        cosine = nn.CosineAnnealingLR(opt_b, t_max=6, eta_min=0.05)
        for _ in range(6):
            warm.step()
            cosine.step()
            assert opt_a.lr == pytest.approx(opt_b.lr)

    @pytest.mark.parametrize("factory", [
        lambda opt: nn.StepLR(opt, step_size=2, gamma=0.5),
        lambda opt: nn.CosineAnnealingLR(opt, t_max=8, eta_min=0.01),
        lambda opt: nn.WarmupCosineLR(opt, t_max=8, warmup_epochs=3, eta_min=0.01),
    ])
    def test_scheduler_state_roundtrip(self, factory):
        opt_ref = nn.SGD([quadratic_param()], lr=1.0)
        sched_ref = factory(opt_ref)
        reference_lrs = []
        for _ in range(8):
            sched_ref.step()
            reference_lrs.append(opt_ref.lr)

        opt_a = nn.SGD([quadratic_param()], lr=1.0)
        sched_a = factory(opt_a)
        for _ in range(3):
            sched_a.step()
        state = sched_a.state_dict()

        opt_b = nn.SGD([quadratic_param()], lr=1.0)
        sched_b = factory(opt_b)
        sched_b.load_state_dict(state)
        assert opt_b.lr == pytest.approx(opt_a.lr)
        resumed_lrs = list(reference_lrs[:3])
        for _ in range(5):
            sched_b.step()
            resumed_lrs.append(opt_b.lr)
        assert resumed_lrs == pytest.approx(reference_lrs)


class TestEndToEndTraining:
    def test_linear_regression_recovers_weights(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0], [-3.0]], dtype=np.float32)
        x = rng.normal(size=(128, 2)).astype(np.float32)
        y = x @ true_w
        model = nn.Linear(2, 1, seed=0)
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            loss = nn.functional.mse_loss(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.allclose(model.weight.data.ravel(), true_w.ravel(), atol=0.05)
