"""Tests for CamAL pipeline persistence (save/load round trips).

The canonical entry points are the generic
:func:`repro.api.save_estimator` / :func:`repro.api.load_estimator`;
``save_camal`` / ``load_camal`` remain as deprecation shims with
identical behavior (asserted below).
"""

import json
import os

import numpy as np
import pytest

from repro.api import CamALLocalizer, load_estimator, save_estimator
from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    load_camal,
    save_camal,
)


@pytest.fixture()
def camal():
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
        for i, k in enumerate((3, 5))
    ]
    for model in models:
        model.eval()
    return CamAL(
        ResNetEnsemble(models),
        detection_threshold=0.4,
        use_attention=True,
        power_gate_watts=500.0,
    )


class TestRoundTrip:
    def test_predictions_identical(self, camal, tmp_path):
        x = np.random.default_rng(0).random((6, 32)).astype(np.float32)
        before = camal.localize(x)
        save_estimator(camal, str(tmp_path))
        reloaded = load_estimator(str(tmp_path))
        assert isinstance(reloaded, CamALLocalizer)
        after = reloaded.localize(x)
        assert np.allclose(before.detection_proba, after.detection_proba, atol=1e-6)
        assert np.array_equal(before.status, after.status)

    def test_settings_preserved(self, camal, tmp_path):
        save_estimator(camal, str(tmp_path))
        reloaded = load_estimator(str(tmp_path))
        assert reloaded.detection_threshold == pytest.approx(0.4)
        assert reloaded.use_attention is True
        assert reloaded.power_gate_watts == pytest.approx(500.0)
        assert reloaded.pipeline.ensemble.kernel_sizes == camal.ensemble.kernel_sizes

    def test_none_power_gate_preserved(self, camal, tmp_path):
        camal.power_gate_watts = None
        save_estimator(camal, str(tmp_path))
        assert load_estimator(str(tmp_path)).power_gate_watts is None

    def test_directory_contents(self, camal, tmp_path):
        save_estimator(camal, str(tmp_path))
        files = set(os.listdir(tmp_path))
        assert "manifest.json" in files
        assert "member_0.npz" in files and "member_1.npz" in files

    def test_manifest_schema(self, camal, tmp_path):
        save_estimator(camal, str(tmp_path))
        with open(tmp_path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == 1
        assert manifest["model"] == "camal"
        assert len(manifest["members"]) == 2
        assert manifest["members"][0]["kernel_size"] == 3

    def test_manifest_without_model_key_still_loads(self, camal, tmp_path):
        """Directories written before the registry (no ``model`` key) load
        as CamAL."""
        save_estimator(camal, str(tmp_path))
        path = tmp_path / "manifest.json"
        manifest = json.loads(path.read_text())
        del manifest["model"]
        path.write_text(json.dumps(manifest))
        assert isinstance(load_estimator(str(tmp_path)), CamALLocalizer)


class TestErrors:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_estimator(str(tmp_path))

    def test_bad_version_raises(self, camal, tmp_path):
        save_estimator(camal, str(tmp_path))
        path = tmp_path / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format_version"):
            load_estimator(str(tmp_path))

    def test_creates_directory(self, camal, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_estimator(camal, str(target))
        assert load_estimator(str(target)) is not None


class TestDeprecatedShims:
    """save_camal/load_camal warn but behave exactly like the originals."""

    def test_save_camal_warns_and_writes_same_layout(self, camal, tmp_path):
        with pytest.warns(DeprecationWarning, match="save_camal is deprecated"):
            save_camal(camal, str(tmp_path / "legacy"))
        save_estimator(camal, str(tmp_path / "fresh"))
        legacy = json.loads((tmp_path / "legacy" / "manifest.json").read_text())
        fresh = json.loads((tmp_path / "fresh" / "manifest.json").read_text())
        assert legacy == fresh
        assert set(os.listdir(tmp_path / "legacy")) == set(
            os.listdir(tmp_path / "fresh")
        )

    def test_load_camal_warns_and_predicts_identically(self, camal, tmp_path):
        save_estimator(camal, str(tmp_path))
        with pytest.warns(DeprecationWarning, match="load_camal is deprecated"):
            legacy = load_camal(str(tmp_path))
        assert isinstance(legacy, CamAL)
        fresh = load_estimator(str(tmp_path))
        x = np.random.default_rng(1).random((4, 32)).astype(np.float32)
        assert np.array_equal(legacy.localize(x).status, fresh.localize(x).status)
        assert np.array_equal(
            legacy.localize(x).detection_proba, fresh.localize(x).detection_proba
        )
