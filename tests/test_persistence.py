"""Tests for CamAL pipeline persistence (save/load round trips)."""

import json
import os

import numpy as np
import pytest

from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    load_camal,
    save_camal,
)


@pytest.fixture()
def camal():
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
        for i, k in enumerate((3, 5))
    ]
    for model in models:
        model.eval()
    return CamAL(
        ResNetEnsemble(models),
        detection_threshold=0.4,
        use_attention=True,
        power_gate_watts=500.0,
    )


class TestRoundTrip:
    def test_predictions_identical(self, camal, tmp_path):
        x = np.random.default_rng(0).random((6, 32)).astype(np.float32)
        before = camal.localize(x)
        save_camal(camal, str(tmp_path))
        reloaded = load_camal(str(tmp_path))
        after = reloaded.localize(x)
        assert np.allclose(before.detection_proba, after.detection_proba, atol=1e-6)
        assert np.array_equal(before.status, after.status)

    def test_settings_preserved(self, camal, tmp_path):
        save_camal(camal, str(tmp_path))
        reloaded = load_camal(str(tmp_path))
        assert reloaded.detection_threshold == pytest.approx(0.4)
        assert reloaded.use_attention is True
        assert reloaded.power_gate_watts == pytest.approx(500.0)
        assert reloaded.ensemble.kernel_sizes == camal.ensemble.kernel_sizes

    def test_none_power_gate_preserved(self, camal, tmp_path):
        camal.power_gate_watts = None
        save_camal(camal, str(tmp_path))
        assert load_camal(str(tmp_path)).power_gate_watts is None

    def test_directory_contents(self, camal, tmp_path):
        save_camal(camal, str(tmp_path))
        files = set(os.listdir(tmp_path))
        assert "manifest.json" in files
        assert "member_0.npz" in files and "member_1.npz" in files

    def test_manifest_schema(self, camal, tmp_path):
        save_camal(camal, str(tmp_path))
        with open(tmp_path / "manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == 1
        assert len(manifest["members"]) == 2
        assert manifest["members"][0]["kernel_size"] == 3


class TestErrors:
    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_camal(str(tmp_path))

    def test_bad_version_raises(self, camal, tmp_path):
        save_camal(camal, str(tmp_path))
        path = tmp_path / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format_version"):
            load_camal(str(tmp_path))

    def test_creates_directory(self, camal, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_camal(camal, str(target))
        assert load_camal(str(target)) is not None
