"""Tests for datasets, loaders, splits and class balancing."""

import numpy as np
import pytest

from repro import nn


class TestTensorDataset:
    def test_len_and_getitem(self):
        ds = nn.TensorDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[3]
        assert x == 3 and y == 6

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            nn.TensorDataset(np.zeros(3), np.zeros(4))

    def test_empty_args_raise(self):
        with pytest.raises(ValueError):
            nn.TensorDataset()


class TestSubsetAndSplit:
    def test_subset_indexing(self):
        ds = nn.TensorDataset(np.arange(10))
        sub = nn.Subset(ds, [7, 2])
        assert len(sub) == 2
        assert sub[0][0] == 7

    def test_random_split_partitions(self):
        ds = nn.TensorDataset(np.arange(100))
        a, b, c = nn.random_split(ds, [0.7, 0.2, 0.1], seed=0)
        assert len(a) + len(b) + len(c) == 100
        seen = {ds[i][0] for part in (a, b, c) for i in part.indices}
        assert len(seen) == 100

    def test_random_split_bad_fractions(self):
        ds = nn.TensorDataset(np.arange(10))
        with pytest.raises(ValueError):
            nn.random_split(ds, [0.5, 0.2])

    def test_random_split_deterministic(self):
        ds = nn.TensorDataset(np.arange(50))
        a1, _ = nn.random_split(ds, [0.5, 0.5], seed=3)
        a2, _ = nn.random_split(ds, [0.5, 0.5], seed=3)
        assert a1.indices == a2.indices


class TestDataLoader:
    def test_batch_shapes(self):
        ds = nn.TensorDataset(np.zeros((10, 4)), np.zeros(10))
        loader = nn.DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert [len(b[0]) for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        ds = nn.TensorDataset(np.zeros((10, 4)))
        loader = nn.DataLoader(ds, batch_size=4, drop_last=True)
        assert [len(b[0]) for b in loader] == [4, 4]
        assert len(loader) == 2

    def test_len_without_drop(self):
        ds = nn.TensorDataset(np.zeros((10, 4)))
        assert len(nn.DataLoader(ds, batch_size=4)) == 3

    def test_shuffle_changes_order(self):
        ds = nn.TensorDataset(np.arange(64))
        plain = np.concatenate([b[0] for b in nn.DataLoader(ds, batch_size=64)])
        shuffled = np.concatenate([b[0] for b in nn.DataLoader(ds, batch_size=64, shuffle=True, seed=0)])
        assert not np.array_equal(plain, shuffled)
        assert sorted(shuffled) == sorted(plain)

    def test_invalid_batch_size(self):
        ds = nn.TensorDataset(np.zeros(4))
        with pytest.raises(ValueError):
            nn.DataLoader(ds, batch_size=0)


class TestBalanceBinary:
    def test_balances_classes(self):
        rng = np.random.default_rng(0)
        x = np.arange(100).reshape(-1, 1)
        y = np.array([1] * 10 + [0] * 90)
        xb, yb = nn.balance_binary(x, y, rng)
        assert yb.sum() == 10
        assert len(yb) == 20

    def test_single_class_returned_unchanged(self):
        rng = np.random.default_rng(0)
        x = np.arange(5).reshape(-1, 1)
        y = np.ones(5)
        xb, yb = nn.balance_binary(x, y, rng)
        assert len(xb) == 5

    def test_rows_stay_aligned(self):
        rng = np.random.default_rng(1)
        x = np.arange(20).reshape(-1, 1)
        y = (x.ravel() < 5).astype(int)  # positives are exactly values 0..4
        xb, yb = nn.balance_binary(x, y, rng)
        assert set(xb[yb == 1].ravel()) <= {0, 1, 2, 3, 4}
