"""Tests for the adaptive (baseline-subtracted) energy estimation (§V-I)."""

import numpy as np
import pytest

from repro.core import estimate_power, estimate_power_adaptive


class TestAdaptiveEstimation:
    def test_recovers_square_appliance_on_flat_baseline(self):
        baseline = 200.0
        draw = 1800.0
        aggregate = np.full((1, 20), baseline, dtype=np.float32)
        status = np.zeros((1, 20), dtype=np.float32)
        aggregate[0, 5:10] += draw
        status[0, 5:10] = 1.0
        power = estimate_power_adaptive(status, aggregate, max_power_watts=3000.0)
        assert np.allclose(power[0, 5:10], draw, atol=1.0)
        assert np.allclose(power[0, :5], 0.0)

    def test_beats_constant_pa_when_draw_differs_from_average(self):
        """When the true draw deviates from P_a, adaptive wins on MAE."""
        baseline = 150.0
        true_draw = 2600.0  # kettle drawing more than the 2000 W average
        aggregate = np.full((1, 30), baseline, dtype=np.float32)
        status = np.zeros((1, 30), dtype=np.float32)
        truth = np.zeros((1, 30), dtype=np.float32)
        aggregate[0, 10:15] += true_draw
        status[0, 10:15] = 1.0
        truth[0, 10:15] = true_draw

        constant = estimate_power(status, 2000.0, aggregate)
        adaptive = estimate_power_adaptive(status, aggregate, max_power_watts=6000.0)
        err_constant = np.abs(constant - truth).mean()
        err_adaptive = np.abs(adaptive - truth).mean()
        assert err_adaptive < err_constant

    def test_ceiling_caps_cooccurring_loads(self):
        aggregate = np.full((1, 10), 9000.0, dtype=np.float32)  # shower running too
        status = np.ones((1, 10), dtype=np.float32)
        power = estimate_power_adaptive(status, aggregate, max_power_watts=2500.0)
        assert np.all(power <= 2500.0)

    def test_never_exceeds_aggregate(self):
        rng = np.random.default_rng(0)
        aggregate = rng.random((3, 16)).astype(np.float32) * 500.0
        status = (rng.random((3, 16)) > 0.5).astype(np.float32)
        power = estimate_power_adaptive(status, aggregate, max_power_watts=1e6)
        assert np.all(power <= aggregate + 1e-4)

    def test_off_is_zero(self):
        rng = np.random.default_rng(1)
        aggregate = rng.random((2, 8)).astype(np.float32) * 100
        status = np.zeros((2, 8), dtype=np.float32)
        assert np.allclose(estimate_power_adaptive(status, aggregate, 100.0), 0.0)

    def test_all_on_window_uses_zero_baseline(self):
        aggregate = np.full((1, 6), 1000.0, dtype=np.float32)
        status = np.ones((1, 6), dtype=np.float32)
        power = estimate_power_adaptive(status, aggregate, max_power_watts=5000.0)
        assert np.allclose(power, 1000.0)

    def test_1d_input_roundtrip(self):
        aggregate = np.array([100.0, 2100.0, 100.0], dtype=np.float32)
        status = np.array([0.0, 1.0, 0.0], dtype=np.float32)
        power = estimate_power_adaptive(status, aggregate, max_power_watts=3000.0)
        assert power.shape == (3,)
        assert power[1] == pytest.approx(2000.0, abs=1.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            estimate_power_adaptive(np.ones((1, 2)), np.ones((1, 3)), 100.0)
        with pytest.raises(ValueError):
            estimate_power_adaptive(np.ones((1, 2)), np.ones((1, 2)), 0.0)
        with pytest.raises(ValueError):
            estimate_power_adaptive(np.ones((1, 2)), np.ones((1, 2)), 10.0, baseline_quantile=2.0)
