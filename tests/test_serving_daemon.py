"""Tests for the serving daemon: protocol, coalescing, backpressure, drain."""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from hashlib import blake2b

import numpy as np
import pytest

from repro import simdata as sd
from repro.core import (
    CamAL,
    LocalizationOutput,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    load_pipelines,
    save_pipelines,
)
from repro.data import IngestConfig, ingest_corpus
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ServeConfig,
    ServerError,
    ServingClient,
    ServingDaemon,
)
from repro.serving.protocol import (
    FrameError,
    FrameReader,
    FrameTooLarge,
    decode_frame,
    decode_series,
    encode_frame,
    encode_series,
)


def _camal(n_models=2, **kwargs):
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
        for i, k in enumerate((3, 5, 7)[:n_models])
    ]
    for model in models:
        model.eval()
    return CamAL(ResNetEnsemble(models), **kwargs)


def _series(n=96, seed=0):
    return (np.random.default_rng(seed).random(n).astype(np.float32) * 2000.0)


def _engine(**kwargs):
    defaults = dict(window=32, stride=16, backend="im2col")
    defaults.update(kwargs)
    engine = InferenceEngine(EngineConfig(**defaults))
    engine.register("kettle", _camal(n_models=2))
    return engine


class _SlowPipeline:
    """Minimal WeakLocalizer surface whose forward takes a known time.

    Lets backpressure/drain tests control service latency without
    depending on machine speed.
    """

    status_threshold = 0.5
    power_gate_watts = None

    def __init__(self, delay_s=0.3):
        self.delay_s = delay_s
        self.calls = 0

    def eval(self):
        return self

    def localize(self, windows, batch_size=256):
        time.sleep(self.delay_s)
        self.calls += 1
        windows = np.asarray(windows, dtype=np.float32)
        soft = np.clip(windows, 0.0, 1.0)
        return LocalizationOutput(
            detection_proba=windows.mean(axis=1),
            detected=np.ones(windows.shape[0], dtype=bool),
            cam=soft.copy(),
            soft_status=soft,
            status=(soft >= 0.5).astype(np.float32),
        )


class TestProtocolUnits:
    def test_frame_roundtrip_chunked(self):
        frames = [{"op": "ping", "id": 1}, {"op": "score", "x": [1.5, 2.5]}]
        wire = b"".join(encode_frame(f) for f in frames)
        reader = FrameReader()
        decoded = []
        for i in range(0, len(wire), 3):  # worst-case packetization
            decoded.extend(reader.feed(wire[i : i + 3]))
        assert decoded == frames
        assert reader.pending_bytes == 0

    def test_blank_lines_skipped(self):
        reader = FrameReader()
        assert list(reader.feed(b"\n \n" + encode_frame({"op": "ping"}))) == [
            {"op": "ping"}
        ]

    def test_malformed_line_raises_but_reader_survives(self):
        reader = FrameReader()
        with pytest.raises(FrameError):
            list(reader.feed(b"{not json}\n"))
        assert list(reader.feed(encode_frame({"op": "ping"}))) == [{"op": "ping"}]

    def test_non_object_frame_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"[1,2,3]")

    def test_oversized_unterminated_buffer_raises(self):
        reader = FrameReader(max_frame_bytes=64)
        with pytest.raises(FrameTooLarge):
            list(reader.feed(b"x" * 65))

    def test_oversized_complete_line_raises(self):
        reader = FrameReader(max_frame_bytes=64)
        with pytest.raises(FrameTooLarge):
            list(reader.feed(b'{"pad":"' + b"x" * 80 + b'"}\n'))

    def test_series_base64_roundtrip_exact(self):
        values = _series(257, seed=3)
        decoded = decode_series(encode_series(values))
        assert decoded.dtype == np.float32
        assert np.array_equal(decoded, values)

    def test_series_list_roundtrip_exact(self):
        values = _series(64, seed=4)
        via_json = json.loads(json.dumps([float(v) for v in values]))
        assert np.array_equal(decode_series(via_json), values)

    def test_series_rejects_garbage(self):
        with pytest.raises(FrameError):
            decode_series("not-base64!!")
        with pytest.raises(FrameError):
            decode_series("YWJj")  # 3 bytes: not a float32 multiple
        with pytest.raises(FrameError):
            decode_series({"nope": 1})
        with pytest.raises(FrameError):
            decode_series(["a", "b"])


class TestServeConfig:
    def test_from_env_and_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVE_PORT", "9911")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "32")
        monkeypatch.setenv("REPRO_SERVE_MAX_WAIT_US", "500")
        monkeypatch.setenv("REPRO_SERVE_QUEUE_DEPTH", "7")
        config = ServeConfig.from_env(port=0)
        assert config.host == "0.0.0.0"
        assert config.port == 0  # explicit override beats the environment
        assert config.max_batch_windows == 32
        assert config.max_wait_us == 500
        assert config.queue_depth == 7

    def test_from_env_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "lots")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            ServeConfig.from_env()

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_depth=0)
        with pytest.raises(ValueError):
            ServeConfig(max_batch_windows=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_us=-1)


class TestDaemonScoring:
    def test_score_bit_identical_to_engine_run(self):
        engine = _engine()
        series = _series(100, seed=1)
        expected = engine.run(series).per_appliance["kettle"]
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            for compact in (True, False):
                with ServingClient(
                    daemon.host, daemon.port, compact=compact
                ) as client:
                    result = client.score_series("kettle", series)
            assert np.array_equal(result.soft_status, expected.soft_status)
            assert np.array_equal(result.status, expected.status)
            assert result.n_windows == len(expected.windows.detected)
            assert result.detection_rate == expected.detection_rate
            assert result.coalesced_requests >= 1

    def test_error_codes(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                assert client.ping()
                with pytest.raises(ServerError) as err:
                    client.score_series("toaster", _series(64))
                assert err.value.code == "unknown_appliance"
                with pytest.raises(ServerError) as err:
                    client._call({"op": "score", "appliance": "kettle"})
                assert err.value.code == "bad_request"
                with pytest.raises(ServerError) as err:
                    client._call(
                        {"op": "score", "appliance": "kettle", "series": []}
                    )
                assert err.value.code == "bad_request"
                with pytest.raises(ServerError) as err:
                    client._call({"op": "warp"})
                assert err.value.code == "unknown_op"

    def test_malformed_frame_connection_survives(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            sock = socket.create_connection((daemon.host, daemon.port), timeout=30)
            reader = FrameReader()
            try:
                sock.sendall(b"this is not json\n")
                sock.sendall(encode_frame({"op": "ping", "id": 7}))
                frames = []
                while len(frames) < 2:
                    chunk = sock.recv(65536)
                    assert chunk, "server closed early"
                    frames.extend(reader.feed(chunk))
                assert frames[0]["ok"] is False
                assert frames[0]["error"]["code"] == "bad_frame"
                assert frames[1] == {"ok": True, "result": {"pong": True}, "id": 7}
            finally:
                sock.close()

    def test_oversized_frame_closes_connection(self):
        engine = _engine()
        config = ServeConfig(port=0, max_frame_bytes=4096)
        with ServingDaemon(engine, config) as daemon:
            sock = socket.create_connection((daemon.host, daemon.port), timeout=30)
            reader = FrameReader()
            try:
                sock.sendall(b"x" * 8192)  # no newline: unrecoverable
                frames = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break  # server closed, as specified
                    frames.extend(reader.feed(chunk))
                assert len(frames) == 1
                assert frames[0]["error"]["code"] == "frame_too_large"
            finally:
                sock.close()

    def test_metrics_snapshot(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                client.score_series("kettle", _series(100, seed=2))
                snapshot = client.metrics()
        assert snapshot["requests"]["score"] == 1
        assert snapshot["windows_total"] > 0
        assert snapshot["latency_ms"]["count"] == 1
        assert snapshot["latency_ms"]["p99"] >= snapshot["latency_ms"]["p50"] > 0
        assert snapshot["coalesce"]["batches"] >= 1
        assert snapshot["appliances"] == ["kettle"]
        assert snapshot["config"]["coalesce"] is True
        assert "kettle" in snapshot["buffer_pool"]
        assert snapshot["draining"] is False


class TestCoalescing:
    def test_concurrent_requests_coalesce_and_stay_bit_identical(self):
        engine = _engine()
        n_clients = 4
        all_series = [_series(100 + 16 * i, seed=10 + i) for i in range(n_clients)]
        expected = [engine.run(s).per_appliance["kettle"] for s in all_series]
        # A generous linger makes the merge deterministic under any
        # scheduler: every request admitted within 150 ms shares a batch.
        config = ServeConfig(port=0, max_wait_us=150_000, max_batch_windows=512)
        results = [None] * n_clients
        errors = []
        with ServingDaemon(engine, config) as daemon:
            barrier = threading.Barrier(n_clients)

            def worker(i):
                try:
                    with ServingClient(daemon.host, daemon.port) as client:
                        barrier.wait()
                        results[i] = client.score_series("kettle", all_series[i])
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append((i, exc))

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not errors, errors
        for i in range(n_clients):
            assert results[i] is not None, f"client {i} got no response"
            assert np.array_equal(
                results[i].soft_status, expected[i].soft_status
            ), f"client {i}: coalesced soft_status diverged from engine.run"
            assert np.array_equal(results[i].status, expected[i].status)
        # The point of the linger: concurrent requests shared a forward.
        assert max(r.coalesced_requests for r in results) >= 2

    def test_coalesce_off_serves_every_request_alone(self):
        engine = _engine()
        config = ServeConfig(port=0, coalesce=False)
        series = _series(100, seed=5)
        expected = engine.run(series).per_appliance["kettle"]
        with ServingDaemon(engine, config) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                result = client.score_series("kettle", series)
        assert result.coalesced_requests == 1
        assert np.array_equal(result.status, expected.status)


class TestBackpressure:
    def test_full_queue_fast_rejects_with_retry_hint(self):
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        engine.register("kettle", _SlowPipeline(delay_s=0.4))
        config = ServeConfig(port=0, queue_depth=1, coalesce=False, warm_start=False)
        n_clients = 6
        outcomes = [None] * n_clients
        with ServingDaemon(engine, config) as daemon:
            barrier = threading.Barrier(n_clients)

            def worker(i):
                try:
                    with ServingClient(daemon.host, daemon.port) as client:
                        barrier.wait()
                        outcomes[i] = client.score_series(
                            "kettle", _series(64, seed=i)
                        )
                except ServerError as exc:
                    outcomes[i] = exc

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        rejected = [o for o in outcomes if isinstance(o, ServerError)]
        served = [o for o in outcomes if not isinstance(o, (ServerError, type(None)))]
        assert served, "at least one request must be admitted and served"
        assert rejected, "a 1-deep queue under 6 concurrent clients must shed load"
        for err in rejected:
            assert err.code == "overloaded"
            assert err.retry_after_ms is not None and err.retry_after_ms >= 1


class TestGracefulDrain:
    def test_inflight_request_survives_shutdown(self):
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        engine.register("kettle", _SlowPipeline(delay_s=0.5))
        config = ServeConfig(port=0, coalesce=False, warm_start=False)
        daemon = ServingDaemon(engine, config)
        host, port = daemon.start()
        holder = {}

        def worker():
            with ServingClient(host, port) as client:
                holder["result"] = client.score_series("kettle", _series(64, seed=9))

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.15)  # request is admitted and mid-forward by now
        daemon.shutdown(drain=True)
        thread.join(timeout=30)
        assert not thread.is_alive()
        result = holder.get("result")
        assert result is not None, "in-flight response was lost during drain"
        assert result.status.shape == (64,)
        # The listener is gone.  Some network stacks still complete the
        # TCP handshake against a just-closed port (and loopback can even
        # self-connect), so assert the *semantic* contract: no late
        # client can extract a response from the stopped daemon.
        try:
            probe = socket.create_connection((host, port), timeout=2)
        except OSError:
            pass  # refused outright — also fine
        else:
            try:
                probe.settimeout(2)
                probe.sendall(encode_frame({"op": "ping"}))
                assert probe.recv(65536) == b"", "stopped daemon answered a ping"
            except OSError:
                pass  # reset mid-exchange — also a refusal
            finally:
                probe.close()

    def test_shutdown_op_drains_and_unblocks_serve_forever(self):
        engine = _engine()
        daemon = ServingDaemon(engine, ServeConfig(port=0))
        host, port = daemon.start()
        waiter = threading.Thread(target=daemon.serve_forever)
        waiter.start()
        with ServingClient(host, port) as client:
            client.score_series("kettle", _series(64, seed=3))
            assert client.shutdown_server() is True
        waiter.join(timeout=30)
        assert not waiter.is_alive()

    def test_shutdown_can_be_disabled(self):
        engine = _engine()
        config = ServeConfig(port=0, allow_shutdown=False)
        with ServingDaemon(engine, config) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with pytest.raises(ServerError) as err:
                    client.shutdown_server()
                assert err.value.code == "bad_request"
                assert client.ping()  # daemon is still up


@pytest.fixture(scope="module")
def tiny_store(tmp_path_factory):
    corpus = sd.ukdale_like(days=0.5, n_houses=3, seed=0)
    out = tmp_path_factory.mktemp("daemon_store") / "store"
    ingest_corpus(corpus, str(out), IngestConfig(shard_length=1000))
    return str(out)


class TestStoreJobs:
    def _fleet(self, tmp_path):
        fleet_dir = str(tmp_path / "fleet")
        save_pipelines(
            {"kettle": _camal(n_models=1), "dishwasher": _camal(n_models=2)},
            fleet_dir,
        )
        return fleet_dir

    def _digests(self, engine, store_path):
        from repro.data import MeterStore

        return {
            house_id: {
                name: blake2b(result.status.tobytes(), digest_size=16).hexdigest()
                for name, result in scores
            }
            for house_id, scores in engine.score_store(MeterStore(store_path))
        }

    def test_in_process_job_matches_direct_scoring(self, tiny_store, tmp_path):
        fleet_dir = self._fleet(tmp_path)
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        for name, estimator in load_pipelines(fleet_dir).items():
            engine.register(name, estimator)
        expected = self._digests(engine, tiny_store)
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                job = client.submit_store_job(tiny_store, workers=1)
        assert job["workers"] == 1
        assert job["n_households"] == len(expected)
        for row in job["rows"]:
            house = expected[row["house_id"]]
            for name, summary in row["appliances"].items():
                assert summary["status_blake2b"] == house[name]
                assert 0.0 <= summary["on_fraction"] <= 1.0

    def test_shard_parallel_job_matches_direct_scoring(self, tiny_store, tmp_path):
        fleet_dir = self._fleet(tmp_path)
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        for name, estimator in load_pipelines(fleet_dir).items():
            engine.register(name, estimator)
        expected = self._digests(engine, tiny_store)
        daemon = ServingDaemon(engine, ServeConfig(port=0), fleet_dir=fleet_dir)
        with daemon:
            with ServingClient(daemon.host, daemon.port, timeout=300.0) as client:
                job = client.submit_store_job(tiny_store, workers=2)
        assert job["workers"] == 2
        assert {row["house_id"] for row in job["rows"]} == set(expected)
        for row in job["rows"]:
            house = expected[row["house_id"]]
            for name, summary in row["appliances"].items():
                assert summary["status_blake2b"] == house[name]

    def test_bad_store_path_is_a_request_error(self, tmp_path):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with pytest.raises(ServerError) as err:
                    client.submit_store_job(str(tmp_path / "missing"))
                assert err.value.code == "bad_request"


class TestServeCLI:
    def test_demo_daemon_sigterm_drains_and_exits_zero(self, tmp_path):
        ready_path = tmp_path / "ready.json"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--demo",
                "--port",
                "0",
                "--no-warm",
                "--ready-file",
                str(ready_path),
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 120
            while not ready_path.exists():
                if proc.poll() is not None:
                    pytest.fail(f"daemon died early:\n{proc.stdout.read()}")
                if time.monotonic() > deadline:
                    pytest.fail("daemon never wrote the ready file")
                time.sleep(0.1)
            info = json.loads(ready_path.read_text())
            assert info["pid"] == proc.pid
            with ServingClient(info["host"], info["port"]) as client:
                assert client.ping()
                result = client.score_series("kettle", _series(300, seed=6))
                assert result.status.shape == (300,)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            output = proc.stdout.read()
            assert "draining" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
