"""Tests for the fault-injection harness and the self-healing layers.

Three contracts under test:

* **determinism** — a ``REPRO_FAULTS`` spec makes the same decisions on
  every run (and across processes, for token-keyed checks), so a chaos
  failure found in CI reproduces locally byte for byte;
* **detection** — corrupt bytes (torn shard, bitflip, torn checkpoint,
  malformed manifest) surface as typed errors, never as silent wrong
  data;
* **recovery** — the healing paths (shard repair, checkpoint fallback,
  client retry, coalescer isolation, pool rebuild) restore results
  **bit-identical** to a fault-free run.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro import simdata as sd
from repro.analysis import faults
from repro.analysis.faults import FaultPlan, FaultSpec, InjectedFault, parse_spec
from repro.core import (
    CamAL,
    LocalizationOutput,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    load_pipelines,
    save_pipelines,
)
from repro.data import (
    IngestConfig,
    ManifestError,
    MeterStore,
    ShardCorruptionError,
    ingest_corpus,
    repair_household_from_source,
    shard_checksum,
)
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ServeConfig,
    ServerError,
    ServingClient,
    ServingDaemon,
)
from repro.training.checkpoint import (
    CheckpointCorruptionError,
    TrainingCheckpoint,
    load_checkpoint,
    load_latest_checkpoint,
    save_checkpoint,
)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _camal(n_models=2, **kwargs):
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=i))
        for i, k in enumerate((3, 5, 7)[:n_models])
    ]
    for model in models:
        model.eval()
    return CamAL(ResNetEnsemble(models), **kwargs)


def _series(n=96, seed=0):
    return np.random.default_rng(seed).random(n).astype(np.float32) * 2000.0


def _engine(**kwargs):
    defaults = dict(window=32, stride=16, backend="im2col")
    defaults.update(kwargs)
    engine = InferenceEngine(EngineConfig(**defaults))
    engine.register("kettle", _camal(n_models=2))
    return engine


def _sequential_seed(prob, n_safe=8, limit=5000):
    """A stream seed whose first draw fires and the next ``n_safe`` don't."""
    for seed in range(limit):
        draws = np.random.default_rng(seed).random(1 + n_safe)
        if draws[0] < prob and (draws[1:] >= prob).all():
            return seed
    raise AssertionError("no sequential seed found — widen the scan")


def _token_seed(point, kind, prob, fire, safe, limit=5000):
    """A seed whose token decisions fire for ``fire`` and not for ``safe``."""
    for seed in range(limit):
        plan = FaultPlan((FaultSpec(point, prob, kind, seed),))
        if all(plan.would_fire(point, t) for t in fire) and not any(
            plan.would_fire(point, t) for t in safe
        ):
            return seed
    raise AssertionError("no token seed found — widen the scan")


def _rewrite_file(path, mutate):
    """Replace ``path``'s bytes with ``mutate(bytes)`` via a fresh inode."""
    with open(path, "rb") as handle:
        data = handle.read()
    tmp = path + ".mut"
    with open(tmp, "wb") as handle:
        handle.write(mutate(data))
    os.replace(tmp, path)


def _flip_byte(path, offset=100):
    _rewrite_file(path, lambda data: bytes(
        data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]
    ))


class _SlowPipeline:
    """Minimal WeakLocalizer surface with a controlled forward latency."""

    status_threshold = 0.5
    power_gate_watts = None

    def __init__(self, delay_s=0.3):
        self.delay_s = delay_s

    def eval(self):
        return self

    def localize(self, windows, batch_size=256):
        import time

        time.sleep(self.delay_s)
        windows = np.asarray(windows, dtype=np.float32)
        soft = np.clip(windows, 0.0, 1.0)
        return LocalizationOutput(
            detection_proba=windows.mean(axis=1),
            detected=np.ones(windows.shape[0], dtype=bool),
            cam=soft.copy(),
            soft_status=soft,
            status=(soft >= 0.5).astype(np.float32),
        )


@pytest.fixture(scope="module")
def corpus():
    return sd.ukdale_like(days=0.5, n_houses=3, seed=0)


@pytest.fixture()
def store_dir(corpus, tmp_path):
    out = str(tmp_path / "store")
    # 720 samples / 256 per shard -> 3 shards per house, so corruption
    # tests can damage one shard and read its healthy neighbours.
    ingest_corpus(corpus, out, IngestConfig(shard_length=256))
    return out


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with fault injection off."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_roundtrip_with_and_without_seed(self):
        specs = parse_spec(
            "store.shard_write:1.0:torn_write:7, serve.worker:0.25:kill"
        )
        assert specs == (
            FaultSpec("store.shard_write", 1.0, "torn_write", 7),
            FaultSpec("serve.worker", 0.25, "kill", 0),
        )

    def test_typos_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            parse_spec("store.shard_wirte:1.0:torn_write")
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_spec("store.shard_write:1.0:shred")
        with pytest.raises(ValueError, match="probability"):
            parse_spec("store.shard_write:lots:torn_write")
        with pytest.raises(ValueError, match="probability"):
            parse_spec("store.shard_write:1.5:torn_write")
        with pytest.raises(ValueError, match="seed"):
            parse_spec("store.shard_write:1.0:torn_write:x")
        with pytest.raises(ValueError, match="point:prob:kind"):
            parse_spec("store.shard_write:1.0")
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(parse_spec(
                "serve.worker:0.5:kill,serve.worker:0.5:delay"
            ))

    def test_unknown_point_at_fire_time_is_an_error(self):
        plan = FaultPlan(parse_spec("serve.worker:0.0:kill"))
        with pytest.raises(ValueError, match="unknown fault point"):
            plan.fire("serve.wroker")


class TestDeterminism:
    def test_sequential_stream_replays_identically(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan(parse_spec("store.shard_read:0.5:exception:11"))
            run = []
            for _ in range(32):
                try:
                    plan.fire("store.shard_read")
                    run.append(False)
                except InjectedFault:
                    run.append(True)
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_token_decisions_are_cross_instance_stable(self):
        # Two independent plans (standing in for two processes that each
        # re-parsed REPRO_FAULTS) agree on every token.
        a = FaultPlan(parse_spec("serve.worker:0.5:kill:3"))
        b = FaultPlan(parse_spec("serve.worker:0.5:kill:3"))
        tokens = list(range(16)) + ["shard-0", ("house_1", 2)]
        assert [a.would_fire("serve.worker", t) for t in tokens] == [
            b.would_fire("serve.worker", t) for t in tokens
        ]

    def test_payload_kinds_corrupt_detectably(self):
        payload = bytes(range(256)) * 4
        plan = FaultPlan(parse_spec("store.shard_write:1.0:torn_write"))
        torn = plan.fire("store.shard_write", payload=payload)
        assert 0 < len(torn) < len(payload)
        plan = FaultPlan(parse_spec("store.shard_write:1.0:bitflip"))
        flipped = plan.fire("store.shard_write", token="t", payload=payload)
        assert len(flipped) == len(payload) and flipped != payload
        assert shard_checksum(flipped) != shard_checksum(payload)

    def test_stats_and_guard_off(self):
        plan = faults.install("serve.coalesce:0.0:delay")
        plan.fire("serve.coalesce")
        assert faults.stats() == {"serve.coalesce": {"checks": 1, "fired": 0}}
        faults.uninstall()
        assert faults.ACTIVE is None
        assert faults.stats() == {}
        # Module-level fire with no plan is a passthrough.
        assert faults.fire("serve.coalesce", payload=b"x") == b"x"

    def test_active_context_restores_previous_plan(self):
        outer = faults.install("serve.coalesce:0.0:delay")
        with faults.active("serve.worker:1.0:delay") as inner:
            assert faults.ACTIVE is inner
        assert faults.ACTIVE is outer


# ----------------------------------------------------------------------
# Data layer: checksums, quarantine, repair
# ----------------------------------------------------------------------
class TestStoreSelfHealing:
    def test_bitflip_detected_on_first_open(self, corpus, store_dir):
        house = corpus.house_ids[0]
        _flip_byte(MeterStore(store_dir).shard_path(house, 0))
        store = MeterStore(store_dir)
        with pytest.raises(ShardCorruptionError, match="checksum"):
            store.shard(house, 0)
        # Healthy shards of the same household still serve.
        assert store.shard(house, 1).shape[1] == store.shard_length

    def test_truncated_shard_detected(self, corpus, store_dir):
        house = corpus.house_ids[0]
        store = MeterStore(store_dir)
        _rewrite_file(store.shard_path(house, 0), lambda data: data[: len(data) // 2])
        fresh = MeterStore(store_dir)
        with pytest.raises(ShardCorruptionError, match="bytes"):
            fresh.shard(house, 0)

    def test_missing_shard_is_typed(self, corpus, store_dir):
        house = corpus.house_ids[0]
        store = MeterStore(store_dir)
        os.unlink(store.shard_path(house, 0))
        with pytest.raises(ShardCorruptionError, match="missing"):
            MeterStore(store_dir).shard(house, 0)

    def test_verify_quarantines_and_repair_is_bit_identical(self, corpus, store_dir):
        house = corpus.house_ids[0]
        store = MeterStore(store_dir)
        original_checksum = store.house_meta(house).checksums[0]
        shard_file = store.shard_path(house, 0)
        _flip_byte(shard_file)

        store = MeterStore(store_dir)
        report = store.verify()
        assert list(report) == [house] and 0 in report[house]

        quarantined = store.verify(quarantine=True)
        assert 0 in quarantined[house]
        assert not os.path.exists(shard_file)
        with pytest.raises(ShardCorruptionError, match="quarantined"):
            store.shard(house, 0)
        # The annotation survives a fresh manifest load.
        with pytest.raises(ShardCorruptionError, match="quarantined"):
            MeterStore(store_dir).shard(house, 0)

        source = next(h for h in corpus.houses if h.house_id == house)
        repaired = repair_household_from_source(
            store, house, source.aggregate, dict(source.appliance_power)
        )
        assert repaired == [0]
        with open(shard_file, "rb") as handle:
            assert shard_checksum(handle.read()) == original_checksum
        assert store.verify() == {}
        assert MeterStore(store_dir).shard(house, 0) is not None

    def test_memmap_cache_revalidates_replaced_file(self, corpus, store_dir):
        house = corpus.house_ids[0]
        store = MeterStore(store_dir)
        first = store.shard(house, 0)
        # Warm hit: the unchanged file is served from the memmap cache.
        assert store.shard(house, 0) is first
        _flip_byte(store.shard_path(house, 0))
        # Same store instance, warm cache: the stat signature changed, so
        # the hit is evicted and the reopened file fails verification.
        with pytest.raises(ShardCorruptionError, match="checksum"):
            store.shard(house, 0)

    def test_malformed_manifest_is_typed(self, store_dir):
        manifest_path = os.path.join(store_dir, "manifest.json")
        with open(manifest_path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            MeterStore(store_dir)
        with open(manifest_path, "w") as handle:
            handle.write('{"format": 1}')
        with pytest.raises(ManifestError, match="households"):
            MeterStore(store_dir)
        # An honest format-version mismatch stays a ValueError, like the
        # checkpoint loader's contract.
        with open(manifest_path, "w") as handle:
            handle.write("{}")
        with pytest.raises(ValueError, match="format"):
            MeterStore(store_dir)
        with open(manifest_path, "w") as handle:
            handle.write("[]")
        with pytest.raises(ManifestError):
            MeterStore(store_dir)

    def test_checksum_count_mismatch_is_typed(self, store_dir):
        manifest_path = os.path.join(store_dir, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        first = next(iter(manifest["households"]))
        manifest["households"][first]["checksums"] = ["00" * 16]
        manifest["households"][first]["n_shards"] = 3
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ManifestError, match="checksum"):
            MeterStore(store_dir)

    def test_ingest_under_torn_writes_is_never_silent(self, corpus, tmp_path):
        out = str(tmp_path / "torn")
        with faults.active("store.shard_write:1.0:torn_write:7"):
            store = ingest_corpus(corpus, out, IngestConfig(shard_length=1000))
        # The manifest itself is exempt from shard faults, so the store
        # loads — and every torn shard is detectable, not silently wrong.
        report = store.verify()
        assert set(report) == set(store.house_ids)
        with pytest.raises(ShardCorruptionError):
            store.shard(corpus.house_ids[0], 0)

    def test_cli_verify_exit_codes(self, corpus, store_dir, capsys):
        from repro.cli import main

        assert main(["data", "verify", store_dir]) == 0
        assert "all checksums match" in capsys.readouterr().out
        _flip_byte(MeterStore(store_dir).shard_path(corpus.house_ids[0], 0))
        with pytest.raises(SystemExit):
            main(["data", "verify", store_dir])


# ----------------------------------------------------------------------
# Training layer: durable checkpoints
# ----------------------------------------------------------------------
def _checkpoint(epoch):
    rng = np.random.default_rng(epoch)
    return TrainingCheckpoint(
        epoch=epoch,
        model_state={"w": rng.random(8).astype(np.float32)},
        optimizer_state={"lr": 0.01, "m": rng.random(8).astype(np.float32)},
        rng_state={"loop": np.random.default_rng(epoch).bit_generator.state,
                   "dropout": []},
    )


class TestCheckpointDurability:
    def test_sidecar_roundtrip_and_bitflip_detection(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, _checkpoint(1))
        assert os.path.exists(path + ".sum")
        assert load_checkpoint(path).epoch == 1
        _flip_byte(path, offset=40)
        with pytest.raises(CheckpointCorruptionError, match="hash"):
            load_checkpoint(path)

    def test_rotation_keeps_last_k(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_KEEP", "3")
        path = str(tmp_path / "ckpt.npz")
        for epoch in range(1, 5):
            save_checkpoint(path, _checkpoint(epoch))
        assert load_checkpoint(path).epoch == 4
        assert load_checkpoint(path + ".1").epoch == 3
        assert load_checkpoint(path + ".2").epoch == 2
        assert not os.path.exists(path + ".3")

    def test_torn_write_falls_back_to_previous_generation(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, _checkpoint(1), keep=2)
        with faults.active("train.checkpoint_write:1.0:torn_write:3"):
            save_checkpoint(path, _checkpoint(2), keep=2)
        # The torn newest generation is provably corrupt...
        with pytest.raises(CheckpointCorruptionError):
            load_checkpoint(path)
        # ...and resume lands on the previous intact one.
        loaded = load_latest_checkpoint(path)
        assert loaded is not None
        checkpoint, loaded_path = loaded
        assert checkpoint.epoch == 1 and loaded_path == path + ".1"

    def test_every_generation_corrupt_returns_none(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, _checkpoint(1), keep=2)
        save_checkpoint(path, _checkpoint(2), keep=2)
        _flip_byte(path, offset=40)
        _flip_byte(path + ".1", offset=40)
        assert load_latest_checkpoint(path) is None

    def test_missing_newest_still_tries_rotations(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, _checkpoint(1), keep=2)
        save_checkpoint(path, _checkpoint(2), keep=2)
        os.unlink(path)
        loaded = load_latest_checkpoint(path)
        assert loaded is not None and loaded[0].epoch == 1

    def test_keep_must_be_positive(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ckpt.npz")
        with pytest.raises(ValueError, match="keep"):
            save_checkpoint(path, _checkpoint(1), keep=0)
        monkeypatch.setenv("REPRO_CKPT_KEEP", "0")
        with pytest.raises(ValueError, match="keep"):
            save_checkpoint(path, _checkpoint(1))


# ----------------------------------------------------------------------
# Serving layer: client retries, deadlines, isolation, pool recovery
# ----------------------------------------------------------------------
class TestClientResilience:
    def test_close_is_idempotent_and_closed_client_is_clear(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            client = ServingClient(daemon.host, daemon.port)
            assert client.ping()
            client.close()
            client.close()  # second close is a no-op, not an error
            with pytest.raises(ConnectionError, match="closed"):
                client.ping()

    def test_daemon_gone_mid_request_raises_connection_error(self):
        engine = _engine()
        daemon = ServingDaemon(engine, ServeConfig(port=0))
        host, port = daemon.start()
        client = ServingClient(host, port)
        try:
            assert client.ping()
            daemon.shutdown(drain=True)
            with pytest.raises(ConnectionError):
                client.score_series("kettle", _series(64, seed=1))
        finally:
            client.close()

    def test_score_with_retry_survives_injected_socket_drops(self):
        engine = _engine()
        series = _series(64, seed=2)
        expected = engine.run(series).per_appliance["kettle"]
        seed = _sequential_seed(prob=0.4)
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with faults.active(f"serve.socket_recv:0.4:exception:{seed}"):
                    result = client.score_with_retry("kettle", series, seed=5)
                    stats = faults.stats()
        assert stats["serve.socket_recv"]["fired"] >= 1
        assert np.array_equal(result.status, expected.status)
        assert np.array_equal(result.soft_status, expected.soft_status)

    def test_retry_does_not_mask_non_retryable_errors(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with pytest.raises(ServerError) as err:
                    client.score_with_retry("toaster", _series(64))
                assert err.value.code == "unknown_appliance"

    def test_retry_validates_attempts(self):
        engine = _engine()
        with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with pytest.raises(ValueError, match="max_attempts"):
                    client.score_with_retry("kettle", _series(64), max_attempts=0)


class TestServerResilience:
    def test_deadline_exceeded_is_typed_and_retryable(self):
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        engine.register("kettle", _SlowPipeline(delay_s=0.6))
        config = ServeConfig(
            port=0, coalesce=False, warm_start=False, request_timeout_s=0.1
        )
        with ServingDaemon(engine, config) as daemon:
            with ServingClient(daemon.host, daemon.port) as client:
                with pytest.raises(ServerError) as err:
                    client.score_series("kettle", _series(64, seed=3))
        assert err.value.code == "deadline_exceeded"
        assert err.value.retry_after_ms is not None and err.value.retry_after_ms >= 1

    def test_coalescer_isolation_keeps_survivors_bit_identical(self):
        engine = _engine()
        n_clients = 3
        all_series = [_series(100 + 16 * i, seed=20 + i) for i in range(n_clients)]
        expected = [engine.run(s).per_appliance["kettle"] for s in all_series]
        config = ServeConfig(port=0, max_wait_us=150_000, max_batch_windows=512)
        results = [None] * n_clients
        errors = []
        # Every *fused* forward throws; the solo replays (batch of one
        # never checks the point) must still answer every waiter.
        with faults.active("serve.coalesce:1.0:exception"):
            with ServingDaemon(engine, config) as daemon:
                barrier = threading.Barrier(n_clients)

                def worker(i):
                    try:
                        with ServingClient(daemon.host, daemon.port) as client:
                            barrier.wait()
                            results[i] = client.score_series(
                                "kettle", all_series[i]
                            )
                    except Exception as exc:  # noqa: BLE001 - surfaced below
                        errors.append((i, exc))

                threads = [
                    threading.Thread(target=worker, args=(i,))
                    for i in range(n_clients)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                with ServingClient(daemon.host, daemon.port) as client:
                    snapshot = client.metrics()
        assert not errors, errors
        for i in range(n_clients):
            assert results[i] is not None
            assert np.array_equal(results[i].soft_status, expected[i].soft_status)
            assert np.array_equal(results[i].status, expected[i].status)
        assert snapshot["recovery"]["coalesce_isolations"] >= 1

    def test_store_job_survives_worker_kill_with_equal_digests(
        self, corpus, store_dir, tmp_path, monkeypatch
    ):
        fleet_dir = str(tmp_path / "fleet")
        save_pipelines({"kettle": _camal(n_models=1)}, fleet_dir)
        engine = InferenceEngine(EngineConfig(window=32, stride=16))
        for name, estimator in load_pipelines(fleet_dir).items():
            engine.register(name, estimator)
        from hashlib import blake2b

        expected = {
            house_id: {
                name: blake2b(result.status.tobytes(), digest_size=16).hexdigest()
                for name, result in scores
            }
            for house_id, scores in engine.score_store(MeterStore(store_dir))
        }
        # Attempt 0 is killed in every worker, attempt 1 survives — the
        # spawn children re-parse REPRO_FAULTS and reach this decision
        # deterministically on their own.
        seed = _token_seed("serve.worker", "kill", 0.5, fire=[0], safe=[1, 2])
        monkeypatch.setenv("REPRO_FAULTS", f"serve.worker:0.5:kill:{seed}")
        daemon = ServingDaemon(engine, ServeConfig(port=0), fleet_dir=fleet_dir)
        with daemon:
            with ServingClient(daemon.host, daemon.port, timeout=300.0) as client:
                job = client.submit_store_job(store_dir, workers=2)
                snapshot = client.metrics()
        assert job["pool_rebuilds"] >= 1
        assert snapshot["recovery"]["pool_rebuilds"] >= 1
        assert {row["house_id"] for row in job["rows"]} == set(expected)
        for row in job["rows"]:
            for name, summary in row["appliances"].items():
                assert summary["status_blake2b"] == expected[row["house_id"]][name]
