"""Tests for the DeviceScope-style reporting layer."""

import numpy as np
import pytest

from repro.core import (
    Activation,
    ApplianceReport,
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    analyze_series,
    household_report,
    merge_close_segments,
    segments_from_status,
)


class TestSegments:
    def test_simple_runs(self):
        status = np.array([0, 1, 1, 0, 0, 1, 0])
        assert segments_from_status(status) == [(1, 3), (5, 6)]

    def test_edges(self):
        assert segments_from_status(np.array([1, 1, 0])) == [(0, 2)]
        assert segments_from_status(np.array([0, 0, 1])) == [(2, 3)]
        assert segments_from_status(np.array([1, 1, 1])) == [(0, 3)]
        assert segments_from_status(np.zeros(5)) == []
        assert segments_from_status(np.array([])) == []

    def test_min_length_filter(self):
        status = np.array([1, 0, 1, 1, 1, 0])
        assert segments_from_status(status, min_length=2) == [(2, 5)]

    def test_merge_close(self):
        segs = [(0, 3), (4, 6), (10, 12)]
        assert merge_close_segments(segs, max_gap=1) == [(0, 6), (10, 12)]
        assert merge_close_segments(segs, max_gap=0) == segs
        assert merge_close_segments([], max_gap=3) == []

    def test_merge_chains(self):
        segs = [(0, 2), (3, 5), (6, 8)]
        assert merge_close_segments(segs, max_gap=1) == [(0, 8)]


class TestApplianceReport:
    def _report(self):
        report = ApplianceReport(appliance="kettle", dt_seconds=60.0, n_samples=2880)
        report.activations = [Activation(10, 13, 100.0), Activation(50, 55, 166.7)]
        report.hourly_histogram = np.zeros(24)
        report.hourly_histogram[7] = 5
        return report

    def test_aggregates(self):
        report = self._report()
        assert report.n_activations == 2
        assert report.total_on_hours == pytest.approx(8 / 60)
        assert report.total_energy_kwh == pytest.approx(0.2667, abs=1e-3)
        assert report.activations_per_day == pytest.approx(1.0)
        assert report.peak_hour == 7

    def test_peak_hour_none_when_empty(self):
        report = ApplianceReport(appliance="x", dt_seconds=60.0, n_samples=100)
        assert report.peak_hour is None

    def test_render(self):
        text = self._report().render()
        assert "kettle" in text and "kWh" in text and "07:00" in text


class _StubEnsemble:
    """Minimal stand-in so analyze_series can be tested without training."""

    def predict_proba(self, x, batch_size=256):
        # Detected whenever the window contains a big value.
        return (x.max(axis=1) > 1.0).astype(np.float32)


class TestAnalyzeSeries:
    def _camal(self):
        model = ResNetTSC(ResNetConfig(kernel_size=3, filters=(4, 4, 4), seed=0))
        model.eval()
        camal = CamAL(ResNetEnsemble([model]))
        return camal

    def test_rejects_2d(self):
        camal = self._camal()
        with pytest.raises(ValueError, match="1-D"):
            analyze_series(camal, np.zeros((2, 10)), "kettle", 60.0, 10)

    def test_rejects_nan(self):
        camal = self._camal()
        series = np.ones(40)
        series[3] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            analyze_series(camal, series, "kettle", 60.0, 10)

    def test_report_counts_synthetic_kettle(self):
        """An untrained model is random; use a trained-free sanity path by
        checking structure, not accuracy."""
        camal = self._camal()
        rng = np.random.default_rng(0)
        series = rng.random(20 * 16).astype(np.float32) * 100.0
        report = analyze_series(camal, series, "kettle", 60.0, 16)
        assert report.n_samples == 320
        assert report.hourly_histogram.shape == (24,)
        for activation in report.activations:
            assert activation.stop_index > activation.start_index
            assert activation.energy_wh >= 0.0

    def test_trailing_partial_window_is_reported(self):
        """The final partial window is padded and scored, not dropped: the
        report covers every input sample (the last hours of a day)."""
        camal = self._camal()
        series = np.random.default_rng(3).random(16 * 5 + 7).astype(np.float32)
        report = analyze_series(camal, series, "kettle", 60.0, 16)
        assert report.n_samples == len(series)

    def test_overlapping_stride_accepted(self):
        camal = self._camal()
        series = np.random.default_rng(4).random(96).astype(np.float32) * 100
        report = analyze_series(camal, series, "kettle", 60.0, 16, stride=8)
        assert report.n_samples == 96

    def test_household_report_multiple_appliances(self):
        camal = self._camal()
        series = np.random.default_rng(1).random(160).astype(np.float32) * 100
        reports = household_report(
            {"kettle": camal, "dishwasher": camal}, series, 60.0, 16
        )
        assert set(reports) == {"kettle", "dishwasher"}
        assert all(isinstance(r, ApplianceReport) for r in reports.values())

    def test_energy_consistency_with_status(self):
        """Total energy equals the per-sample power sum over ON segments."""
        camal = self._camal()
        series = np.random.default_rng(2).random(320).astype(np.float32) * 3000
        report = analyze_series(camal, series, "kettle", 60.0, 32)
        # Energy per activation is non-negative and bounded by P_a * duration.
        for act in report.activations:
            upper = 2000.0 * act.duration_samples * 60.0 / 3600.0
            assert 0.0 <= act.energy_wh <= upper + 1e-3
