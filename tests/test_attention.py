"""Tests for multi-head self-attention and the transformer encoder layer."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestMHSA:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(8, 2, seed=0)
        out = attn(Tensor(np.zeros((2, 5, 8), dtype=np.float32)))
        assert out.shape == (2, 5, 8)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(10, 3)

    def test_permutation_equivariance(self):
        """Self-attention (no positional encoding) commutes with permutations."""
        attn = nn.MultiHeadSelfAttention(4, 2, seed=1)
        attn.eval()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 6, 4)).astype(np.float32)
        perm = rng.permutation(6)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        assert np.allclose(out[:, perm], out_perm, atol=1e-4)

    def test_gradients_reach_all_projections(self):
        attn = nn.MultiHeadSelfAttention(4, 2, seed=2)
        x = Tensor(np.random.default_rng(1).normal(size=(1, 3, 4)).astype(np.float32), requires_grad=True)
        attn(x).sum().backward()
        for proj in (attn.q_proj, attn.k_proj, attn.v_proj, attn.out_proj):
            assert proj.weight.grad is not None

    def test_constant_input_gives_constant_output(self):
        attn = nn.MultiHeadSelfAttention(4, 1, seed=3)
        attn.eval()
        x = Tensor(np.ones((1, 5, 4), dtype=np.float32))
        out = attn(x).data
        assert np.allclose(out, out[:, :1, :], atol=1e-5)


class TestTransformerEncoderLayer:
    def test_shape_preserved(self):
        layer = nn.TransformerEncoderLayer(8, 2, seed=0)
        out = layer(Tensor(np.zeros((2, 6, 8), dtype=np.float32)))
        assert out.shape == (2, 6, 8)

    def test_residual_path_exists(self):
        """With zeroed sublayer outputs, the block must be the identity."""
        layer = nn.TransformerEncoderLayer(4, 2, seed=1)
        layer.eval()
        layer.attn.out_proj.weight.data[...] = 0.0
        layer.attn.out_proj.bias.data[...] = 0.0
        layer.ff[2].weight.data[...] = 0.0
        layer.ff[2].bias.data[...] = 0.0
        x = np.random.default_rng(0).normal(size=(1, 3, 4)).astype(np.float32)
        assert np.allclose(layer(Tensor(x)).data, x, atol=1e-5)

    def test_backward(self):
        layer = nn.TransformerEncoderLayer(8, 4, dropout=0.1, seed=2)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 5, 8)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
