"""Table IV: influence of CamAL's design choices.

Paper shape: removing the attention-sigmoid module costs ~50% F1 (recall
rises slightly, precision collapses); removing kernel diversity costs a
few percent.
"""

import repro.experiments as ex


def test_table4_design_ablation(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_design_ablation,
        args=(preset,),
        kwargs={"corpus_name": "ukdale", "appliances": ["kettle", "dishwasher"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    rows = {r.variant: r for r in result.rows}
    # Full CamAL must not be worse than the attention-ablated variant.
    assert rows["CamAL"].f1 >= rows["w/o Attention module"].f1 - 0.05
    assert set(rows) == {"CamAL", "w/o Attention module", "w/o Different kernel kp"}
