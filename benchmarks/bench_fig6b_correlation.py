"""Fig. 6(b): detection (Balanced Accuracy) vs localization (F1) correlation.

Paper shape: positive correlation with a 3rd-order trend; high detection
accuracy (>0.9) implies good localization (>0.7), not vice versa.
"""

import repro.experiments as ex

CASES = [
    ("ukdale", "kettle"),
    ("ukdale", "dishwasher"),
    ("ukdale", "microwave"),
    ("edf_ev", "electric_vehicle"),
]


def test_fig6b_detection_localization_correlation(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_correlation, args=(preset,), kwargs={"cases": CASES}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert len(result.points) == len(CASES)
    assert result.cubic_coefficients is not None
    # Positive association between detection and localization quality.
    assert result.pearson() > 0.0
