"""Table II: theoretical complexity and trainable-parameter counts."""

import repro.experiments as ex


def test_table2_complexity(benchmark):
    result = benchmark.pedantic(ex.run_complexity_table, rounds=1, iterations=1)
    print()
    print(result.render())
    # Shape check: every implementation lands within 10% of the paper.
    assert all(row.relative_error < 0.10 for row in result.rows)
    # Ordering check: TransNILM heaviest, BiGRU lightest (as in the paper).
    counts = {r.model: r.ours_params_k for r in result.rows}
    assert counts["TransNILM"] == max(counts.values())
    assert counts["BiGRU"] == min(counts.values())
