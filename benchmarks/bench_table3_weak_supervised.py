"""Table III: weakly supervised results — CamAL vs CRNN-weak.

Paper shape: CamAL beats CRNN-weak on every dataset average (+135% F1,
+247% MR on the full table).  The bench preset runs a representative
subset of the 11 cases; pass all cases for the full table.
"""

import repro.experiments as ex

BENCH_CASES = [
    ("ukdale", "kettle"),
    ("ukdale", "dishwasher"),
    ("refit", "kettle"),
    ("edf_ev", "electric_vehicle"),
]


def test_table3_weak_supervised(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_weak_table, args=(preset,), kwargs={"cases": BENCH_CASES},
        rounds=1, iterations=1,
    )
    print()
    print(result.render())
    averages = result.averages()
    # The paper's headline: CamAL significantly outperforms CRNN-weak.
    assert averages["CamAL"]["F1"] > averages["CRNN-weak"]["F1"]
    assert averages["CamAL"]["MR"] > averages["CRNN-weak"]["MR"]
