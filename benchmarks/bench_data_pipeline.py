"""Data-pipeline benchmark: ingest throughput, streamed vs. in-memory
windows, and the bounded-memory store-serving contract.

Three stories, one JSON report with per-stage ``rows``:

* **ingest** — corpus -> sharded store (``repro.data.ingest_corpus``),
  measured in samples/second, plus the bit-identical round-trip check
  (store reads == in-memory ``resample`` + ``forward_fill``);
* **windows** — iterating every training window through a ``DataLoader``
  from :class:`~repro.data.StreamingWindows` (memory-mapped shards)
  vs. the in-memory pipeline (slice + ``TensorDataset``), in windows/s;
* **scoring** — :meth:`InferenceEngine.score_store` vs.
  :meth:`InferenceEngine.run` on the materialized series: outputs must be
  bit-identical while the streamed path's peak memory (``tracemalloc``)
  stays bounded by shard-sized chunks instead of the full
  ``(n_windows, window)`` batch the run path materializes.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_data_pipeline.py

``--smoke`` (or env ``REPRO_BENCH_SMOKE=1``) shrinks the config for CI
and additionally asserts the peak-memory bound; ``--store DIR`` reuses an
already-ingested store (the cached CI fixture) for the windows/scoring
stages instead of ingesting a fresh corpus.  Through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_data_pipeline.py -s
"""

import json
import os
import sys
import tempfile
import time
import tracemalloc

import numpy as np

from repro import simdata as sd
from repro.core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC
from repro.data import IngestConfig, MeterStore, StreamingWindows, ingest_corpus
from repro.experiments.runner import house_windows
from repro.nn.data import DataLoader, TensorDataset
from repro.serving import EngineConfig, InferenceEngine

WINDOW = 128
STRIDE = WINDOW // 16  # heavy overlap: the regime where run() batches balloon
SHARD_LENGTH = 2048
BATCH_SIZE = 16


def _corpus(smoke: bool) -> sd.Corpus:
    if smoke:
        return sd.ukdale_like(days=6.0, n_houses=3, seed=0)
    return sd.ukdale_like(days=21.0, n_houses=5, seed=0)


def _tiny_camal() -> CamAL:
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(4, 8, 8), seed=k))
        for k in (3, 5)
    ]
    return CamAL(ResNetEnsemble(models).eval(), power_gate_watts=100.0)


def _round_trip_identical(store: MeterStore, corpus: sd.Corpus) -> bool:
    for house in corpus.houses:
        expected = sd.forward_fill(house.aggregate, corpus.max_ffill_samples)
        if not np.array_equal(expected, store.aggregate(house.house_id), equal_nan=True):
            return False
    return True


def _bench_ingest(corpus: sd.Corpus, store_dir: str) -> dict:
    start = time.perf_counter()
    store = ingest_corpus(
        corpus, store_dir, IngestConfig(shard_length=SHARD_LENGTH)
    )
    seconds = time.perf_counter() - start
    total = store.total_samples()
    return {
        "stage": "ingest",
        "households": len(store),
        "samples": total,
        "seconds": seconds,
        "samples_per_second": total / seconds,
        "round_trip_identical": _round_trip_identical(store, corpus),
    }


def _drain(loader: DataLoader) -> int:
    count = 0
    for batch in loader:
        count += len(batch[0])
    return count


def _bench_windows(store: MeterStore, corpus: sd.Corpus) -> dict:
    streamed = StreamingWindows(store, "kettle", window=WINDOW)
    start = time.perf_counter()
    n_streamed = _drain(DataLoader(streamed, batch_size=64, shuffle=True, seed=0))
    streamed_seconds = time.perf_counter() - start

    # In-memory pipeline: preprocess + slice + iterate (what every run
    # re-paid before the store existed).
    start = time.perf_counter()
    pool = sd.concat_window_sets(
        [house_windows(corpus, "kettle", hid, WINDOW) for hid in corpus.house_ids]
    )
    dataset = TensorDataset(pool.inputs, pool.strong, pool.weak)
    n_memory = _drain(DataLoader(dataset, batch_size=64, shuffle=True, seed=0))
    memory_seconds = time.perf_counter() - start

    return {
        "stage": "windows",
        "n_windows": n_streamed,
        "streamed_seconds": streamed_seconds,
        "streamed_windows_per_second": n_streamed / streamed_seconds,
        "in_memory_seconds": memory_seconds,
        "in_memory_windows_per_second": n_memory / memory_seconds,
        "counts_match": n_streamed == n_memory,
    }


def _peak_bytes(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def _bench_scoring(store: MeterStore, smoke: bool) -> dict:
    def build_engine() -> InferenceEngine:
        engine = InferenceEngine(
            EngineConfig(window=WINDOW, stride=STRIDE, batch_size=BATCH_SIZE)
        )
        return engine.register("kettle", _tiny_camal())

    house_id = max(store.house_ids, key=store.n_samples)
    n = store.n_samples(house_id)
    series = np.array(store.read_channel(house_id, "aggregate"))  # gaps as 0 W

    engine = build_engine()
    streamed = {}

    def run_streamed():
        streamed["scores"] = dict(engine.score_store(store, house_ids=[house_id]))

    peak_streamed = _peak_bytes(run_streamed)

    full_engine = build_engine()
    materialized = {}

    def run_full():
        materialized["result"] = full_engine.run(series)

    peak_full = _peak_bytes(run_full)

    got = streamed["scores"][house_id].per_appliance["kettle"]
    ref = materialized["result"].per_appliance["kettle"]
    plan = materialized["result"].plan
    matches = bool(
        np.array_equal(ref.soft_status, got.soft_status)
        and np.array_equal(ref.status, got.status)
        and int(ref.windows.detected.sum()) == got.n_detected
    )

    # What score_store may legitimately hold at once: the float64
    # stitch accumulators + float32 outputs (24 B/sample), one chunk of
    # windows with the engine's working copies (chunk is shard-sized),
    # and interpreter/model slack.  Crucially independent of n_windows.
    chunk_windows = engine._chunk_windows_default(plan, store.shard_length)
    chunk_bytes = chunk_windows * WINDOW * 4
    full_batch_bytes = plan.n_windows * WINDOW * 4
    memory_bound = 24 * n + 16 * chunk_bytes + (8 << 20)
    row = {
        "stage": "scoring",
        "house_id": house_id,
        "n_samples": n,
        "n_windows": plan.n_windows,
        "stride": STRIDE,
        "shard_bytes": store.shard_length * 4,
        "full_window_batch_bytes": full_batch_bytes,
        "peak_streamed_bytes": peak_streamed,
        "peak_full_bytes": peak_full,
        "peak_ratio": peak_streamed / peak_full,
        "memory_bound_bytes": memory_bound,
        "scores_match_run": matches,
        "peak_bounded_by_chunks": peak_streamed <= memory_bound,
        "streamed_below_full": peak_streamed < peak_full,
    }
    return row


def run_benchmark(smoke: bool = False, store_dir: str = None) -> dict:
    corpus = _corpus(smoke)
    with tempfile.TemporaryDirectory() as tmp:
        if store_dir and os.path.exists(os.path.join(store_dir, "manifest.json")):
            # Cached CI fixture: cheap open, but it must describe this
            # benchmark's corpus for the equivalence checks to hold.
            store = MeterStore(store_dir)
            reused = store.shard_length == SHARD_LENGTH and store.house_ids == [
                h.house_id for h in corpus.houses
            ]
            if not reused:
                store = None
        else:
            store, reused = None, False
        if store is None:
            target = store_dir or os.path.join(tmp, "store")
            ingest_row = _bench_ingest(corpus, target)
            store = MeterStore(target)
        else:
            ingest_row = {
                "stage": "ingest",
                "reused_store": store.path,
                "households": len(store),
                "samples": store.total_samples(),
                "round_trip_identical": _round_trip_identical(store, corpus),
            }
        rows = [
            ingest_row,
            _bench_windows(store, corpus),
            _bench_scoring(store, smoke),
        ]
    report = {
        "benchmark": "data_pipeline",
        "smoke": smoke,
        "window": WINDOW,
        "shard_length": SHARD_LENGTH,
        "rows": rows,
    }
    report["ok"] = bool(
        rows[0]["round_trip_identical"]
        and rows[1]["counts_match"]
        and rows[2]["scores_match_run"]
        and rows[2]["streamed_below_full"]
        and (not smoke or rows[2]["peak_bounded_by_chunks"])
    )
    return report


def _smoke_from_env() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "")


def test_data_pipeline():
    report = run_benchmark(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    ingest, windows, scoring = report["rows"]
    assert ingest["round_trip_identical"]
    assert windows["counts_match"]
    assert scoring["scores_match_run"]
    # The bounded-memory contract of score_store: streamed peak sits
    # under both the chunk-based bound and the materialized run path.
    assert scoring["peak_bounded_by_chunks"]
    assert scoring["streamed_below_full"]


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv or _smoke_from_env()
    store_dir = None
    if "--store" in sys.argv:
        store_dir = sys.argv[sys.argv.index("--store") + 1]
    report = run_benchmark(smoke=smoke, store_dir=store_dir)
    print(json.dumps(report, indent=2))
    # Exit non-zero when a correctness invariant breaks so CI pipelines
    # gate on the run itself, not just on the uploaded artifact.
    if not report["ok"]:
        sys.exit(1)
