"""Fig. 7: training-time and inference-throughput comparisons.

Paper shapes: (a) CamAL among the fastest to train, far faster than
CRNN-weak; (b) per-epoch time grows with household count, weakly
supervised methods stay cheaper; (c) CamAL's throughput beats CRNN-weak.
"""

import repro.experiments as ex


def test_fig7a_training_times(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_training_times,
        args=(preset, [("ukdale", "kettle")]),
        kwargs={"methods": ["CamAL", "CRNN-weak", "TPNILM"]},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert all(seconds > 0 for seconds in result.seconds_per_method.values())


def test_fig7b_epoch_time_vs_households(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_epoch_times,
        args=(preset, (1, 2)),
        kwargs={
            "methods": ["CamAL", "CRNN-weak", "TPNILM", "UNet-NILM"],
            # Scaled-down white-noise series (paper: 17520 = 1 year @ 30 min).
            "series_length": preset.window * 8,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    for method, points in result.series.items():
        counts = [c for c, _ in points]
        assert counts == sorted(counts)
        assert all(t > 0 for _, t in points)


def test_fig7c_throughput(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_throughput,
        args=(preset, (64, 128)),
        kwargs={"methods": ["CamAL", "CRNN-weak", "TPNILM", "UNet-NILM"], "n_windows": 8},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # Paper shape that survives down-scaling: the purely convolutional
    # baselines (TPNILM, UNet-NILM) are the fastest at inference ("the only
    # two more efficient" than CamAL in Fig. 7c).  The CamAL-vs-CRNN-weak
    # ordering only emerges at paper scale, where the CRNN's 350-unit GRU
    # over 510-step windows dominates — see EXPERIMENTS.md.
    camal = dict(result.series["CamAL"])
    assert dict(result.series["TPNILM"])[128] > camal[128]
    assert dict(result.series["UNet-NILM"])[128] > camal[128]
    assert all(tps > 0 for _, tps in result.series["CRNN-weak"])
