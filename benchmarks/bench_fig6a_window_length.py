"""Fig. 6(a): impact of the training window length (how weak can labels be?).

Paper shape: small appliances (kettle) tolerate short windows; the curve
degrades (or training becomes impossible — no negative samples) as the
window grows past the appliance's usage period.
"""

import math

import repro.experiments as ex


def test_fig6a_window_length(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_window_length,
        args=("ukdale", "kettle", preset),
        kwargs={"train_windows": (32, 64, 128)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert len(result.points) == 3
    finite = [f1 for _, f1 in result.points if not math.isnan(f1)]
    assert finite, "at least one window length must be trainable"
    assert all(0.0 <= f1 <= 1.0 for f1 in finite)
