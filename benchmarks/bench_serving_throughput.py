"""Serving throughput: fused single-forward vs. legacy double-forward.

The fused path (:meth:`CamAL.localize` via ``forward_fused``) computes
detection probability and CAM from one forward pass per ensemble member;
the legacy path (:func:`localize_double_forward`) runs detection and then
re-runs the conv stack of every detected window for the CAM.  On
detected-heavy batches — the production common case, and the worst case
for the legacy path — fusion should approach a 2x win.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py

or through pytest alongside the other paper benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -s
"""

import json
import time

import numpy as np

from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    localize_double_forward,
)

N_WINDOWS = 48
WINDOW_LENGTH = 128
N_MODELS = 3
REPEATS = 3


def _build_camal() -> CamAL:
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=i))
        for i, k in enumerate((5, 7, 9)[:N_MODELS])
    ]
    for model in models:
        model.eval()
    # detection_threshold=0 makes every window "detected": the paper's
    # Table 2 cost story concerns exactly this detected-heavy regime.
    return CamAL(ResNetEnsemble(models), detection_threshold=0.0)


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark() -> dict:
    camal = _build_camal()
    x = (
        np.random.default_rng(0).random((N_WINDOWS, WINDOW_LENGTH)) * 2.0
    ).astype(np.float32)

    # Warm-up (first call pays allocator/cache effects).
    camal.localize(x[:4])
    localize_double_forward(camal, x[:4])

    fused_seconds = _time(camal.localize, x)
    legacy_seconds = _time(localize_double_forward, camal, x)

    fused = camal.localize(x)
    legacy = localize_double_forward(camal, x)
    max_abs_diff = float(np.abs(fused.soft_status - legacy.soft_status).max())

    return {
        "benchmark": "serving_throughput",
        "n_windows": N_WINDOWS,
        "window_length": WINDOW_LENGTH,
        "n_models": N_MODELS,
        "detected_fraction": float(fused.detected.mean()),
        "fused_windows_per_sec": N_WINDOWS / fused_seconds,
        "legacy_windows_per_sec": N_WINDOWS / legacy_seconds,
        "speedup": legacy_seconds / fused_seconds,
        "max_abs_soft_status_diff": max_abs_diff,
    }


def test_serving_throughput():
    result = run_benchmark()
    print()
    print(json.dumps(result, indent=2))
    assert result["detected_fraction"] == 1.0  # detected-heavy by design
    assert result["max_abs_soft_status_diff"] < 1e-5  # same answers
    # One forward instead of two must buy at least 1.5x on this regime.
    assert result["speedup"] >= 1.5


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
