"""Serving throughput: fused single-forward vs. legacy double-forward,
plus a per-model sweep of the estimator registry.

The fused path (:meth:`CamAL.localize` via ``forward_fused``) computes
detection probability and CAM from one forward pass per ensemble member;
the legacy path (:func:`localize_double_forward`) runs detection and then
re-runs the conv stack of every detected window for the CAM.  On
detected-heavy batches — the production common case, and the worst case
for the legacy path — fusion should approach a 2x win.

The **model sweep** drives registered estimators (CamAL vs. a seq2seq
baseline) through the same ``localize`` serving surface and emits one
JSON row per model, so per-model serving cost is tracked alongside the
fusion result.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py

or through pytest alongside the other paper benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -s
"""

import json
import time

import numpy as np

from repro import api
from repro.core import (
    CamAL,
    ResNetConfig,
    ResNetEnsemble,
    ResNetTSC,
    localize_double_forward,
)

N_WINDOWS = 48
WINDOW_LENGTH = 128
N_MODELS = 3
REPEATS = 3

#: Registry models swept for per-model serving rows: the paper's method
#: against one strongly supervised seq2seq baseline.
SWEEP_MODELS = ("camal", "tpnilm")
SWEEP_SCALE = "tiny"


def _build_camal() -> CamAL:
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=i))
        for i, k in enumerate((5, 7, 9)[:N_MODELS])
    ]
    for model in models:
        model.eval()
    # detection_threshold=0 makes every window "detected": the paper's
    # Table 2 cost story concerns exactly this detected-heavy regime.
    return CamAL(ResNetEnsemble(models), detection_threshold=0.0)


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark() -> dict:
    camal = _build_camal()
    x = (
        np.random.default_rng(0).random((N_WINDOWS, WINDOW_LENGTH)) * 2.0
    ).astype(np.float32)

    # Warm-up (first call pays allocator/cache effects).
    camal.localize(x[:4])
    localize_double_forward(camal, x[:4])

    fused_seconds = _time(camal.localize, x)
    legacy_seconds = _time(localize_double_forward, camal, x)

    fused = camal.localize(x)
    legacy = localize_double_forward(camal, x)
    max_abs_diff = float(np.abs(fused.soft_status - legacy.soft_status).max())

    return {
        "benchmark": "serving_throughput",
        "n_windows": N_WINDOWS,
        "window_length": WINDOW_LENGTH,
        "n_models": N_MODELS,
        "detected_fraction": float(fused.detected.mean()),
        "fused_windows_per_sec": N_WINDOWS / fused_seconds,
        "legacy_windows_per_sec": N_WINDOWS / legacy_seconds,
        "speedup": legacy_seconds / fused_seconds,
        "max_abs_soft_status_diff": max_abs_diff,
        # Plan-cache counters for the fused path: the timed calls above
        # replay one traced grouped-GEMM plan per micro-batch signature.
        "plan": camal.ensemble.plan_cache.stats,
    }


def _sweep_estimator(name: str) -> "api.WeakLocalizer":
    """Build an inference-ready estimator for the sweep (untrained weights
    — throughput only depends on the architecture)."""
    if name == "camal":
        return api.CamALLocalizer(pipeline=_build_camal())
    return api.create(name, scale=SWEEP_SCALE, seed=0).eval()


def run_model_sweep() -> list:
    """One JSON row per registered model served through ``localize``."""
    x = (
        np.random.default_rng(1).random((N_WINDOWS, WINDOW_LENGTH)) * 2.0
    ).astype(np.float32)
    rows = []
    for name in SWEEP_MODELS:
        estimator = _sweep_estimator(name)
        estimator.localize(x[:4])  # warm-up
        seconds = _time(estimator.localize, x)
        rows.append(
            {
                "model": name,
                "scale": SWEEP_SCALE if name != "camal" else "bench",
                "supervision": estimator.supervision,
                "n_parameters": estimator.num_parameters(),
                "windows_per_sec": N_WINDOWS / seconds,
            }
        )
    return rows


def run_report() -> dict:
    result = run_benchmark()
    result["models"] = run_model_sweep()
    return result


def test_serving_throughput():
    result = run_benchmark()
    print()
    print(json.dumps(result, indent=2))
    assert result["detected_fraction"] == 1.0  # detected-heavy by design
    assert result["max_abs_soft_status_diff"] < 1e-5  # same answers
    # One forward instead of two must still win on this regime.  The margin
    # used to be ~1.9x; the nn.backend conv kernels + no-closure inference
    # mode sped the *legacy* double-forward path up even more than the fused
    # one (Amdahl: the shared CAM/sigmoid post-processing now dominates), so
    # the structural fusion advantage lands nearer 1.3x.
    assert result["speedup"] >= 1.15


def test_model_sweep_rows():
    rows = run_model_sweep()
    print()
    print(json.dumps(rows, indent=2))
    assert [row["model"] for row in rows] == list(SWEEP_MODELS)
    for row in rows:
        assert row["windows_per_sec"] > 0
        assert row["n_parameters"] > 0


if __name__ == "__main__":
    print(json.dumps(run_report(), indent=2))
