"""Fig. 9: monetary / carbon / storage costs of the three label schemes.

Paper shape: per-timestamp labels cost orders of magnitude more dollars
and gCO2 than possession questionnaires; strong-label storage is ~6x the
weak-label storage (1M households, 5 appliances, 1-minute sampling).
"""

import pytest

import repro.experiments as ex


def test_fig9_cost_comparison(benchmark):
    result = benchmark.pedantic(
        ex.run_cost_analysis, kwargs={"n_households": 1_000_000}, rounds=1, iterations=1
    )
    print()
    print(result.render())

    strong, weak, possession = result.per_household
    # >2 orders of magnitude between strong and possession ($ and gCO2).
    assert strong.dollars_per_household / possession.dollars_per_household > 100
    assert strong.gco2_per_household / possession.gco2_per_household > 100
    # Storage ratio ~6x (1 aggregate + 5 appliance channels vs aggregate).
    assert result.storage_ratio == pytest.approx(6.0, rel=0.01)
    # Strong-label storage for 1M homes lands in the paper's ~15-25 TB band.
    assert 10.0 < strong.storage_terabytes < 40.0
