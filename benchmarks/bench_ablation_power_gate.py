"""Ablation: the power-gate refinement (DESIGN.md §5).

The literal §IV-B formula marks a timestamp ON whenever the ensemble CAM
is positive (the base load keeps x(t) > 0 everywhere); gating by the
appliance's Table-I ON threshold removes the false-positive halo for
short-spike appliances while leaving long-cycle appliances unchanged.
"""

import repro.experiments as ex


def _run(preset):
    corpus = ex.build_corpus("ukdale", preset)
    rows = []
    for appliance in ("kettle", "dishwasher"):
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=0)
        gated, _ = ex.run_camal(case, preset, seed=0, power_gate=True)
        literal, _ = ex.run_camal(case, preset, seed=0, power_gate=False)
        rows.append((appliance, gated, literal))
    return rows


def test_power_gate_ablation(benchmark, preset):
    rows = benchmark.pedantic(_run, args=(preset,), rounds=1, iterations=1)
    print()
    table = []
    for appliance, gated, literal in rows:
        table.append([appliance, "power gate", gated.f1, gated.precision, gated.recall])
        table.append([appliance, "literal §IV-B", literal.f1, literal.precision, literal.recall])
    print(ex.render_table(
        ["Case", "Variant", "F1", "Pr", "Rc"], table,
        title="Ablation — power gate vs literal attention formula",
    ))
    for appliance, gated, literal in rows:
        # The gate never hurts precision and never reduces recall below the
        # literal variant's ON set (it only removes predictions).
        assert gated.precision >= literal.precision - 1e-9
        assert gated.recall <= literal.recall + 1e-9
    # For the short-spike appliance the gate must deliver a real F1 gain.
    kettle_gated = rows[0][1]
    kettle_literal = rows[0][2]
    assert kettle_gated.f1 >= kettle_literal.f1
