"""NN-op microbenchmarks: conv backends, inference mode, buffer pool.

Emits one JSON row per ``(backend, conv shape)`` over the paper's Table-II
ResNet-ensemble inventory (``repro.api.conv_shapes("camal", "paper")``) —
forward and forward+backward throughput — plus an end-to-end serving-engine
row (windows/s and the buffer pool's steady-state allocation counters) and
a training-determinism block (loss trajectories per backend).

The speedup structure is shape-dependent by design:

* the ``C_in = 1`` *entry* convolutions (one per member kernel ``k_p``)
  are where the reference gather-copy loses worst — im2col wins several
  fold there;
* the wide mid-stack shapes are GEMM-bound, so every kernel converges to
  BLAS throughput and the margin is thinner;
* the long-kernel (``k_p = 25``) wide blocks flip to the FFT kernel,
  which the autotuner picks up.

``--smoke`` asserts the load-bearing claims cheaply for CI:

* im2col beats reference at every paper shape in aggregate (geometric
  mean), and by >= 2x on the entry convolutions;
* the grouped execution plan (traced eval, batched per-layer-group GEMMs)
  beats the per-member module loop >= 1.5x over the paper's five-member
  kernel set at the compact filter preset — the graph-level-fusion
  claim; the BLAS-saturated full-width row rides along unasserted;
* steady-state fused inference performs **zero** fresh pool allocations
  per micro-batch after warm-up;
* training loss trajectories are bit-identical run-to-run under
  ``reference`` and tolerance-bounded under ``auto``.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_nn_ops.py [--smoke]
"""

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import api
from repro.nn import backend
from repro.nn import functional as F
from repro.nn.tensor import Tensor

N_WINDOWS = 16  # batch size per conv timing
WINDOW_LENGTH = 128  # Table-II window length for the shape rows
REPEATS = 3

#: Backends timed per shape (``auto`` resolves to one of these per shape).
KERNEL_BACKENDS = ("reference", "im2col", "fft")


def _time(fn, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def paper_conv_shapes():
    """The distinct Table-II conv signatures of the CamAL paper ensemble."""
    return api.conv_shapes("camal", scale="paper")


def bench_conv_shapes(shapes=None, n=N_WINDOWS, length=WINDOW_LENGTH):
    """Per-backend forward / forward+backward timings for each conv shape."""
    rng = np.random.default_rng(0)
    rows = []
    for c_in, c_out, kernel in shapes or paper_conv_shapes():
        pad = (kernel - 1) // 2
        x_data = rng.normal(size=(n, c_in, length)).astype(np.float32)
        w_data = rng.normal(size=(c_out, c_in, kernel)).astype(np.float32) * 0.1
        row = {
            "c_in": c_in,
            "c_out": c_out,
            "kernel": kernel,
            "n": n,
            "length": length,
        }
        for name in KERNEL_BACKENDS:
            with backend.use_backend(name):
                x = Tensor(x_data)
                w = Tensor(w_data)
                F.conv1d(x, w, padding=pad)  # warm-up
                fwd = _time(lambda: F.conv1d(x, w, padding=pad))

                xg = Tensor(x_data, requires_grad=True)
                wg = Tensor(w_data, requires_grad=True)

                def fwd_bwd():
                    xg.grad = wg.grad = None
                    F.conv1d(xg, wg, padding=pad).sum().backward()

                fwd_bwd()  # warm-up
                row[f"{name}_fwd_s"] = fwd
                row[f"{name}_fwd_bwd_s"] = _time(fwd_bwd)
        with backend.use_backend("auto"):
            x = Tensor(x_data)
            w = Tensor(w_data)
            F.conv1d(x, w, padding=pad)  # tunes on first call
            row["auto_fwd_s"] = _time(lambda: F.conv1d(x, w, padding=pad))
            row["auto_choice"] = backend.autotune_choices().get(
                (n, c_in, c_out, kernel, length + 2 * pad, 1), "?"
            )
        row["im2col_speedup"] = row["reference_fwd_s"] / row["im2col_fwd_s"]
        row["auto_speedup"] = row["reference_fwd_s"] / row["auto_fwd_s"]
        rows.append(row)
    return rows


def _geomean(values):
    values = np.asarray(list(values), dtype=np.float64)
    return float(np.exp(np.log(values).mean())) if len(values) else float("nan")


def summarize_conv(rows):
    entry = [r for r in rows if r["c_in"] == 1 and r["kernel"] > 1]
    return {
        "entry_geomean_speedup_im2col": _geomean(r["im2col_speedup"] for r in entry),
        "geomean_speedup_im2col": _geomean(r["im2col_speedup"] for r in rows),
        "geomean_speedup_auto": _geomean(r["auto_speedup"] for r in rows),
    }


def bench_fused_ensemble(n=8, length=128, filters=(4, 8, 8), repeats=7):
    """Traced grouped-GEMM plan vs the per-member module loop.

    Builds the paper's five-member kernel set ``{5,7,9,15,25}`` at the
    given filter widths and times ``forward_fused`` three ways over the
    same batch: with ``REPRO_NN_PLAN=off REPRO_NN_FUSE=off`` (the staged
    conv -> shift -> ReLU per-member loop), with ``REPRO_NN_PLAN=off``
    (the per-member loop with the fused conv epilogue), and through the
    traced plan whose conv layers run as one batched GEMM per shape
    group.  The loop/plan timings are interleaved and each reported as a
    min-of-``repeats`` so a scheduler stall on a shared box cannot skew
    the ratio in either direction.

    The headline ``fused_speedup`` (plan vs fused per-member loop) is
    asserted ``>= 1.5x`` in ``--smoke`` at the *compact* filter preset
    ``(4, 8, 8)``, where the per-member loop is dispatch-bound and the
    plan's zero-dispatch replay is a structural win.  At the full paper
    width ``(64, 128, 128)`` both paths are BLAS-saturated and the
    margin shrinks to ~1.2-1.4x — that row is reported in the JSON for
    the record but not asserted.
    """
    import os

    from repro.core import DEFAULT_KERNEL_SET, ResNetConfig, ResNetEnsemble, ResNetTSC

    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=filters, seed=i)).eval()
        for i, k in enumerate(DEFAULT_KERNEL_SET)
    ]
    ensemble = ResNetEnsemble(models)
    x = (np.random.default_rng(3).random((n, length)) * 2.0).astype(np.float32)

    saved = {k: os.environ.get(k) for k in ("REPRO_NN_PLAN", "REPRO_NN_FUSE")}

    def run(plan: bool, fuse: bool = True):
        os.environ.pop("REPRO_NN_PLAN", None) if plan else os.environ.update(
            REPRO_NN_PLAN="off"
        )
        os.environ.pop("REPRO_NN_FUSE", None) if fuse else os.environ.update(
            REPRO_NN_FUSE="off"
        )
        return ensemble.forward_fused(x, batch_size=n)

    try:
        run(plan=False)  # warm pool + autotuner
        run(plan=True)  # traces + validates the plan
        backend.reset_op_counts()
        run(plan=True)  # one pure replay for the count
        gemms_per_batch = backend.op_counts()["fused_conv_gemms"]
        mins = {"staged": float("inf"), "loop": float("inf"), "plan": float("inf")}
        for _ in range(repeats):
            for key, plan, fuse in (
                ("staged", False, False),
                ("loop", False, True),
                ("plan", True, True),
            ):
                start = time.perf_counter()
                run(plan, fuse)
                mins[key] = min(mins[key], time.perf_counter() - start)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return {
        "n_members": len(models),
        "n": n,
        "length": length,
        "filters": list(filters),
        "staged_loop_s": mins["staged"],
        "member_loop_s": mins["loop"],
        "fused_plan_s": mins["plan"],
        "fused_speedup": mins["loop"] / mins["plan"],
        "speedup_vs_staged": mins["staged"] / mins["plan"],
        "grouped_gemms_per_batch": gemms_per_batch,
        "plan": ensemble.plan_cache.stats,
    }


def summarize_fused_ensemble(rows):
    """Batch-size sweep of the plan-vs-loop ratio, summarized by geomean.

    The smoke assertion targets the geometric mean across batch sizes so
    one noisy sample on a busy box cannot flip the verdict either way.
    """
    return {
        "rows": rows,
        "geomean_fused_speedup": _geomean(r["fused_speedup"] for r in rows),
        "geomean_speedup_vs_staged": _geomean(r["speedup_vs_staged"] for r in rows),
        "grouped_gemms_per_batch": rows[0]["grouped_gemms_per_batch"],
        "plan": rows[-1]["plan"],
    }


def bench_engine(series_length=6000):
    """End-to-end serving windows/s + the pool's steady-state counters."""
    from repro.core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC
    from repro.serving import EngineConfig, InferenceEngine
    from repro.serving.windowing import plan_windows

    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=i))
        for i, k in enumerate((5, 7, 9))
    ]
    camal = CamAL(ResNetEnsemble(models), detection_threshold=0.0)
    engine = InferenceEngine(EngineConfig(window=128, stride=64, batch_size=64))
    engine.register("appliance", camal)
    series = (np.random.default_rng(1).random(series_length) * 2000.0).astype(
        np.float32
    )

    engine.run(series)  # warm-up: populates the buffer pool, traces plans
    warm_allocations = camal.ensemble.buffer_pool.fresh_allocations
    seconds = _time(lambda: engine.run(series), repeats=2)
    stats = camal.ensemble.buffer_pool.stats
    n_windows = plan_windows(series_length, 128, 64).n_windows
    return {
        "series_length": series_length,
        "n_windows": n_windows,
        "windows_per_sec": n_windows / seconds,
        "steady_state_fresh_allocations": stats["fresh_allocations"]
        - warm_allocations,
        "pool": stats,
        "plan": engine.plan_stats().get("appliance", {}),
    }


def bench_training_determinism(epochs=3):
    """Loss trajectories per backend: bit-identity and auto's tolerance."""
    from repro.core import ResNetConfig, ResNetTSC
    from repro.training import TrainConfig, train_classifier

    rng = np.random.default_rng(2)
    x = rng.normal(size=(48, 64)).astype(np.float32)
    y = (rng.random(48) > 0.5).astype(np.int64)
    cfg = TrainConfig(epochs=epochs, batch_size=16, patience=0, lr=1e-3, seed=0)

    def trajectory(mode):
        with backend.use_backend(mode):
            model = ResNetTSC(
                ResNetConfig(kernel_size=5, filters=(4, 8, 8), seed=0)
            )
            return train_classifier(model, x, y, x, y, cfg).train_losses

    ref_a = trajectory("reference")
    ref_b = trajectory("reference")
    im2col = trajectory("im2col")
    auto = trajectory("auto")
    return {
        "epochs": epochs,
        "reference_losses": ref_a,
        "im2col_losses": im2col,
        "auto_losses": auto,
        "reference_bit_identical": ref_a == ref_b,
        "im2col_max_rel_dev": float(
            np.max(np.abs(np.array(im2col) - ref_a) / np.abs(ref_a))
        ),
        "auto_max_rel_dev": float(
            np.max(np.abs(np.array(auto) - ref_a) / np.abs(ref_a))
        ),
    }


class _RawPool:
    """The pre-instrumentation BufferPool take/step loop, replicated.

    The sanitizer claim is "free when off": the instrumented pool with
    ``_tracker is None`` must time the same as the pool as it was before
    the tracker existed.  There is no pre-instrumentation class left to
    import, so this replica *is* the baseline — same dict layout, same
    branch structure minus the tracker checks.
    """

    def __init__(self):
        self._free = {}
        self._taken = []

    def take(self, shape, dtype=np.float32):
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            arr = free.pop()
        else:
            arr = np.empty(key[0], dtype=dtype)
        self._taken.append((key, arr))
        return arr

    def step(self):
        for key, arr in self._taken:
            self._free.setdefault(key, []).append(arr)
        self._taken.clear()


def bench_sanitizer(iters=200, repeats=31):
    """Pool take/step throughput: raw replica vs instrumented (off and on).

    ``disabled_overhead`` is the contract number: the instrumented pool
    with the sanitizer off vs the pre-instrumentation replica, on the
    steady-state (all-reuse) loop.  The enabled row is informational —
    poison-filling every released buffer is the point, not a regression.
    """
    from repro.analysis import sanitize
    from repro.nn.backend.pool import BufferPool

    shapes = ((8, 128), (8, 16, 128), (8, 16 * 5, 128), (16, 8, 128))

    def loop(pool):
        def run():
            for _ in range(iters):
                for shape in shapes:
                    pool.take(shape)
                pool.step()
        return run

    def warm_and_time(pool):
        loop(pool)()  # populate the free lists: timed loop is all-reuse
        return _time(loop(pool), repeats=repeats)

    raw_s = warm_and_time(_RawPool())
    with sanitize.force(False):
        disabled_s = warm_and_time(BufferPool())
    sanitize.reset_stats()
    with sanitize.force(True):
        enabled_s = warm_and_time(BufferPool())
    enabled_stats = sanitize.stats()
    return {
        "iters": iters,
        "raw_pool_s": raw_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_s / raw_s - 1.0,
        "enabled_overhead": enabled_s / raw_s - 1.0,
        "enabled_poison_fills": enabled_stats["poison_fills"],
        "enabled_generation_bumps": enabled_stats["generation_bumps"],
    }


def bench_lint():
    """Self-lint of src/ + benchmarks/ (the CI gate, timed and counted)."""
    from repro.analysis.lint import run_lint

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    start = time.perf_counter()
    report = run_lint(["src", "benchmarks"], root=root)
    elapsed = time.perf_counter() - start
    counts = report.counts()
    counts["lint_s"] = elapsed
    counts["rules_violated"] = sorted({v.rule for v in report.errors})
    return counts


def run_report(smoke=False):
    conv_rows = bench_conv_shapes()
    report = {
        "benchmark": "nn_ops",
        "default_backend": backend.get_backend(),
        "conv_shapes": conv_rows,
        "summary": summarize_conv(conv_rows),
        "fused_ensemble": summarize_fused_ensemble(
            [bench_fused_ensemble(n=n) for n in (4, 8, 16)]
        ),
        "fused_ensemble_paper_width": bench_fused_ensemble(
            n=16, filters=(64, 128, 128), repeats=2 if smoke else 4
        ),
        "engine": bench_engine(series_length=3000 if smoke else 6000),
        "training": bench_training_determinism(),
        "analysis": {
            "sanitizer": bench_sanitizer(),
            "lint": bench_lint(),
        },
    }
    return report


def check_smoke(report):
    """The CI assertions; raises AssertionError with the offending numbers."""
    summary = report["summary"]
    assert summary["entry_geomean_speedup_im2col"] >= 2.0, (
        "im2col must beat reference >=2x on the paper's entry convs: "
        f"{summary['entry_geomean_speedup_im2col']:.2f}x"
    )
    assert summary["geomean_speedup_im2col"] > 1.0, (
        "im2col must beat reference across the Table-II inventory: "
        f"{summary['geomean_speedup_im2col']:.2f}x"
    )
    fused = report["fused_ensemble"]
    assert fused["geomean_fused_speedup"] >= 1.5, (
        "the grouped execution plan must beat the per-member loop >=1.5x "
        "(geomean over batch sizes) over the paper kernel set: "
        f"{fused['geomean_fused_speedup']:.2f}x"
    )
    engine = report["engine"]
    assert engine["steady_state_fresh_allocations"] == 0, (
        "steady-state fused inference must allocate nothing from the pool: "
        f"{engine['steady_state_fresh_allocations']} fresh allocations"
    )
    training = report["training"]
    assert training["reference_bit_identical"], (
        "reference-backend training must be bit-deterministic"
    )
    assert training["auto_max_rel_dev"] < 1e-2, (
        "auto-backend training must stay tolerance-bounded vs reference: "
        f"rel dev {training['auto_max_rel_dev']:.2e}"
    )
    analysis = report["analysis"]
    assert analysis["sanitizer"]["disabled_overhead"] < 0.05, (
        "sanitizer instrumentation must be free when off (<5% on the raw "
        f"pool loop): {analysis['sanitizer']['disabled_overhead']:.1%}"
    )
    assert analysis["sanitizer"]["enabled_poison_fills"] > 0, (
        "the enabled sanitizer run must actually poison released buffers"
    )
    assert analysis["lint"]["errors"] == 0, (
        "the tree must lint clean: "
        f"{analysis['lint']['errors']} errors in rules "
        f"{analysis['lint']['rules_violated']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert the speedup / zero-allocation / determinism contracts",
    )
    args = parser.parse_args(argv)
    report = run_report(smoke=args.smoke)
    print(json.dumps(report, indent=2))
    if args.smoke:
        check_smoke(report)
        print("smoke checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
