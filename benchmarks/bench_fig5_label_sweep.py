"""Figures 1 & 5: localization F1 vs number of training labels.

Paper shape: strongly supervised baselines need orders of magnitude more
labels (paper average: 144x) to approach CamAL; CamAL dominates CRNN-weak
at every budget.
"""

import repro.experiments as ex


def test_fig5_label_sweep(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_label_sweep,
        args=("ukdale", "kettle", preset),
        kwargs={"methods": ["CamAL", "CRNN-weak", "TPNILM", "UNet-NILM"], "n_points": 3},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    factors = result.label_factor_to_match_camal()
    print(f"  label factors to match CamAL: {factors}")

    camal = result.curves["CamAL"]
    tpnilm = result.curves["TPNILM"]
    # Strong supervision consumes window-length x more labels per window.
    assert tpnilm[0].n_labels == camal[0].n_labels * preset.window
    # CamAL's best F1 beats the strongly supervised ones at equal budget:
    # compare at the *largest weak budget* vs the strong run whose label
    # count is closest to it.
    best_camal = max(p.f1 for p in camal)
    weakest_strong = min(tpnilm, key=lambda p: p.n_labels)
    assert best_camal > weakest_strong.f1
