"""Training throughput: process-parallel ensemble training vs. serial.

Algorithm 1 trains ``|kernel_set| * n_trials`` independent ResNet
candidates; :func:`repro.core.train_ensemble_parallel` fans them out over
a ``ProcessPoolExecutor``.  Because every candidate derives its own seed,
the parallel run must select a bit-identical ensemble — this benchmark
measures the wall-clock win *and* verifies that equivalence, plus the
checkpoint/resume contract (a resumed run reproduces the uninterrupted
loss history exactly).

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py

``--smoke`` (or env ``REPRO_BENCH_SMOKE=1``) shrinks the config for CI.
Through pytest alongside the other paper benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_training_throughput.py -s
"""

import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.core import (
    EnsembleConfig,
    ResNetConfig,
    ResNetTSC,
    train_ensemble,
    train_ensemble_parallel,
)
from repro.training import TrainConfig, state_dicts_equal, train_classifier

N_WORKERS = 2


def _config(smoke: bool) -> EnsembleConfig:
    if smoke:
        train = TrainConfig(epochs=2, batch_size=32, patience=0)
        return EnsembleConfig(
            kernel_set=(3, 5), n_trials=1, n_models=2, filters=(4, 8, 8), train=train
        )
    # Sized so each candidate trains for long enough that pool startup and
    # result pickling are noise — the regime the speedup gate applies to.
    train = TrainConfig(epochs=6, batch_size=32, patience=0)
    return EnsembleConfig(
        kernel_set=(3, 5, 7, 9), n_trials=1, n_models=3, filters=(8, 16, 16), train=train
    )


def _spike_windows(n: int, w: int, seed: int = 0):
    """Synthetic weakly-labeled windows (appliance = additive spike)."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, w)).astype(np.float32) * 0.2
    y = (rng.random(n) > 0.5).astype(np.int64)
    for i in np.flatnonzero(y == 1):
        start = rng.integers(0, w - 5)
        x[i, start : start + 4] += 2.0
    return x, y


def _ensembles_identical(a, b) -> bool:
    return len(a) == len(b) and all(
        state_dicts_equal(model_a.state_dict(), model_b.state_dict())
        for model_a, model_b in zip(a.models, b.models)
    )


def _check_resume(x, y, filters) -> bool:
    """Interrupted-then-resumed training must replay the full-run history."""
    train_full = TrainConfig(epochs=4, batch_size=32, patience=0, seed=0)
    model_full = ResNetTSC(ResNetConfig(kernel_size=3, filters=filters, seed=0))
    full = train_classifier(model_full, x, y, x, y, train_full)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "candidate.npz")
        model_half = ResNetTSC(ResNetConfig(kernel_size=3, filters=filters, seed=0))
        train_classifier(
            model_half, x, y, x, y,
            TrainConfig(epochs=2, batch_size=32, patience=0, seed=0, checkpoint_path=path),
        )
        model_resumed = ResNetTSC(ResNetConfig(kernel_size=3, filters=filters, seed=0))
        resumed = train_classifier(
            model_resumed, x, y, x, y,
            TrainConfig(epochs=4, batch_size=32, patience=0, seed=0, checkpoint_path=path),
        )
    histories_match = (
        resumed.train_losses == full.train_losses
        and resumed.val_losses == full.val_losses
    )
    return histories_match and state_dicts_equal(
        model_full.state_dict(), model_resumed.state_dict()
    )


def run_benchmark(smoke: bool = False, n_workers: int = N_WORKERS) -> dict:
    config = _config(smoke)
    x, y = _spike_windows(n=96 if smoke else 192, w=32 if smoke else 64)

    start = time.perf_counter()
    serial_ensemble, candidates = train_ensemble(x, y, x, y, config)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_ensemble, _ = train_ensemble_parallel(
        x, y, x, y, config, n_workers=n_workers
    )
    parallel_seconds = time.perf_counter() - start

    return {
        "benchmark": "training_throughput",
        "smoke": smoke,
        "n_candidates": len(candidates),
        "n_train_windows": len(x),
        "epochs": config.train.epochs,
        "n_workers": n_workers,
        "cpu_count": os.cpu_count() or 1,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "parallel_matches_serial": _ensembles_identical(
            serial_ensemble, parallel_ensemble
        ),
        "resume_matches_uninterrupted": _check_resume(x, y, config.filters),
    }


def _smoke_from_env() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "")


def test_training_throughput():
    # The speedup gate needs real cores *and* a workload large enough that
    # per-candidate training dominates pool startup, so multi-core machines
    # run the full config; single-CPU runners (where a pool can only add
    # overhead and the gate is moot) keep the fast smoke config.
    multi_core = (os.cpu_count() or 1) >= 2
    result = run_benchmark(smoke=not multi_core)
    print()
    print(json.dumps(result, indent=2))
    # Correctness is asserted unconditionally: worker fan-out and
    # checkpoint/resume must never change the trained ensemble.
    assert result["parallel_matches_serial"]
    assert result["resume_matches_uninterrupted"]
    if multi_core:
        assert result["speedup"] >= 1.5


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv or _smoke_from_env()
    report = run_benchmark(smoke=smoke)
    print(json.dumps(report, indent=2))
    # Exit non-zero when a correctness invariant breaks so CI pipelines
    # gate on the run itself, not just on the uploaded artifact.
    if not (report["parallel_matches_serial"] and report["resume_matches_uninterrupted"]):
        sys.exit(1)
