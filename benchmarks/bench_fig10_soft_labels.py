"""Fig. 10 / RQ5: strongly supervised baselines trained on CamAL soft labels.

Paper shape: baselines trained *only* on soft labels lose little accuracy,
and when strong labels are scarce, adding soft labels improves results
(+34% .. +1200% depending on the baseline).
"""

import numpy as np

import repro.experiments as ex


def _run(preset, edf_weak, edf_ev):
    possession = ex.run_possession_pipeline(
        edf_weak, edf_ev, "electric_vehicle", preset,
        window_candidates=(preset.window,),
    )
    return ex.run_figure10(
        possession.camal, edf_ev, preset,
        methods=["TPNILM", "BiGRU"],
        mixes=((0, 8), (2, 6), (4, 4)),
    )


def test_fig10_soft_label_augmentation(benchmark, preset, edf_weak, edf_ev):
    result = benchmark.pedantic(
        _run, args=(preset, edf_weak, edf_ev), rounds=1, iterations=1
    )
    print()
    print(result.render())

    for curve in result.curves:
        scores = [f1 for _, _, f1 in curve.points]
        assert all(np.isfinite(scores))
        assert all(0.0 <= s <= 1.0 for s in scores)

    # When strong labels are scarce, strong+soft must beat strong-only
    # for at least one baseline (the paper's headline improvement).
    improvements = []
    for mixed, ref in zip(result.curves, result.strong_only):
        mixed_at = {n_strong: f1 for n_strong, _, f1 in mixed.points}
        for n_strong, _, ref_f1 in ref.points:
            if n_strong in mixed_at:
                improvements.append(mixed_at[n_strong] - ref_f1)
    assert improvements and max(improvements) > 0.0
