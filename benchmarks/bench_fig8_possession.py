"""Fig. 8 / RQ4: training with one possession label per household.

Paper shape: CamAL trained on possession labels alone reaches localization
quality comparable to its per-subsequence training, using orders of
magnitude fewer labels than any alternative.
"""

import repro.experiments as ex


def test_fig8_possession_only(benchmark, preset, edf_weak, edf_ev):
    result = benchmark.pedantic(
        ex.run_possession_pipeline,
        args=(edf_weak, edf_ev, "electric_vehicle", preset),
        kwargs={"window_candidates": (preset.window,)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    # One label per household: the budget is household-sized.
    assert result.localization.n_labels <= len(edf_weak)
    # ...and it still localizes (EV is the paper's showcase possession case).
    assert result.localization.f1 > 0.3


def test_fig8_label_granularity_comparison(benchmark, preset, edf_weak, edf_ev):
    result = benchmark.pedantic(
        ex.run_figure8,
        args=(edf_weak, edf_ev, "electric_vehicle", preset),
        kwargs={"window_candidates": (preset.window,)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    by_scheme = {(method, scheme): (f1, n) for method, scheme, f1, n in result.rows}
    # Label budgets must be ordered: household << subsequence << timestamp.
    n_household = by_scheme[("CamAL", "household")][1]
    n_subseq = by_scheme[("CamAL", "subsequence")][1]
    n_timestamp = by_scheme[("CRNN", "timestamp")][1]
    assert n_household < n_subseq < n_timestamp
