"""Fault-injection guard overhead + chaos recovery digest equality.

Two claims, both load-bearing for shipping the harness enabled-by-default
in every build:

1. **The disabled guard is free.**  Every injection point costs one
   module-attribute load + ``is None`` branch when ``REPRO_FAULTS`` is
   unset.  This benchmark times that exact pattern in a tight loop,
   scales it by a generous per-request check count, and compares against
   the measured p50 request latency of a real daemon — the overhead must
   stay under **1%**.

2. **Recovery is bit-identical.**  With chaos on (every fused forward
   poisoned, a quarter of socket reads dropped), a retrying client must
   receive byte-for-byte the same status series a fault-free
   ``engine.run`` produces — the self-healing paths may cost latency,
   never correctness.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_faults.py [--smoke]

or through pytest alongside the other paper benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s
"""

import argparse
import json
import os
import sys
import threading
import time
from hashlib import blake2b

os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

import numpy as np

from repro.analysis import faults
from repro.core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ServeConfig,
    ServingClient,
    ServingDaemon,
)

WINDOW = 128
STRIDE = 64
N_MODELS = 3
SERIES_LENGTH = WINDOW + STRIDE

#: Iterations of the guard micro-loop; per-check cost is tens of ns, so
#: this finishes in milliseconds while drowning timer granularity.
GUARD_ITERS = 200_000
#: Generous bound on guard checks per scored request (client recv loop +
#: coalescer + a margin for future points on the request path).
CHECKS_PER_REQUEST = 8

LATENCY_REQUESTS = 30
CHAOS_CLIENTS = 3
CHAOS_REQUESTS_PER_CLIENT = 6
#: Chaos spec for the recovery cell: every fused forward throws (forcing
#: solo-replay isolation), and a quarter of client socket reads raise
#: (forcing reconnect + resend).  Seeded, so the run is reproducible.
CHAOS_SPEC = "serve.coalesce:1.0:exception:5,serve.socket_recv:0.25:exception:9"
CHAOS_MAX_ATTEMPTS = 8


def _build_camal() -> CamAL:
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=i))
        for i, k in enumerate((5, 7, 9)[:N_MODELS])
    ]
    for model in models:
        model.eval()
    return CamAL(ResNetEnsemble(models), detection_threshold=0.0)


def _build_engine() -> InferenceEngine:
    engine = InferenceEngine(
        EngineConfig(window=WINDOW, stride=STRIDE, backend="im2col")
    )
    engine.register("kettle", _build_camal())
    engine.warmup()
    return engine


def _guard_loop(n: int) -> int:
    """The exact disabled-guard pattern every injection point pays."""
    hits = 0
    for _ in range(n):
        if faults.ACTIVE is not None:
            hits += 1
    return hits


def _measure_guard_ns() -> float:
    """Per-check cost of the disabled guard, in nanoseconds.

    The loop overhead is *included*, making this an upper bound — the
    honest direction for a "this is free" claim.
    """
    assert faults.ACTIVE is None, "guard benchmark requires injection off"
    _guard_loop(GUARD_ITERS)  # warm the bytecode/attribute caches
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        hits = _guard_loop(GUARD_ITERS)
        elapsed = time.perf_counter() - start
        assert hits == 0
        best = min(best, elapsed)
    return best / GUARD_ITERS * 1e9


def _measure_request_latency_ms(engine: InferenceEngine) -> float:
    """p50 client-observed latency of a real daemon, fault injection off."""
    series = np.random.default_rng(0).random(SERIES_LENGTH).astype(np.float32)
    series *= 2000.0
    latencies = []
    with ServingDaemon(engine, ServeConfig(port=0)) as daemon:
        with ServingClient(daemon.host, daemon.port) as client:
            client.score_series("kettle", series)  # warm the serving path
            for _ in range(LATENCY_REQUESTS):
                start = time.perf_counter()
                client.score_series("kettle", series)
                latencies.append(time.perf_counter() - start)
    return float(np.percentile(np.asarray(latencies) * 1e3, 50))


def _digest(status: np.ndarray) -> str:
    return blake2b(status.tobytes(), digest_size=16).hexdigest()


def _run_chaos_cell(engine: InferenceEngine) -> dict:
    """Concurrent retrying clients under chaos vs. fault-free digests."""
    all_series = [
        (np.random.default_rng(40 + i).random(SERIES_LENGTH).astype(np.float32)
         * 2000.0)
        for i in range(CHAOS_CLIENTS)
    ]
    expected = [_digest(engine.run(s).per_appliance["kettle"].status)
                for s in all_series]
    config = ServeConfig(port=0, max_wait_us=50_000, max_batch_windows=512)
    digests = [[None] * CHAOS_REQUESTS_PER_CLIENT for _ in range(CHAOS_CLIENTS)]
    errors = []
    with faults.active(CHAOS_SPEC) as plan:
        with ServingDaemon(engine, config) as daemon:
            barrier = threading.Barrier(CHAOS_CLIENTS)

            def worker(i):
                try:
                    with ServingClient(daemon.host, daemon.port) as client:
                        barrier.wait()
                        for r in range(CHAOS_REQUESTS_PER_CLIENT):
                            result = client.score_with_retry(
                                "kettle",
                                all_series[i],
                                max_attempts=CHAOS_MAX_ATTEMPTS,
                                seed=i,
                            )
                            digests[i][r] = _digest(result.status)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(f"client {i}: {type(exc).__name__}: {exc}")

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(CHAOS_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snapshot = daemon.metrics.snapshot()
        stats = plan.stats()
    if errors:
        raise RuntimeError("; ".join(errors))
    all_equal = all(
        digest == expected[i]
        for i, per_client in enumerate(digests)
        for digest in per_client
    )
    return {
        "spec": CHAOS_SPEC,
        "clients": CHAOS_CLIENTS,
        "requests": CHAOS_CLIENTS * CHAOS_REQUESTS_PER_CLIENT,
        "all_digests_equal_fault_free": all_equal,
        "coalesce_isolations": snapshot["recovery"]["coalesce_isolations"],
        "socket_faults_fired": stats["serve.socket_recv"]["fired"],
        "forward_faults_fired": stats["serve.coalesce"]["fired"],
    }


def run_report(smoke: bool = False) -> dict:
    engine = _build_engine()
    guard_ns = _measure_guard_ns()
    p50_ms = _measure_request_latency_ms(engine)
    overhead_fraction = (guard_ns * CHECKS_PER_REQUEST) / (p50_ms * 1e6)
    return {
        "benchmark": "faults",
        "smoke": smoke,
        "guard": {
            "per_check_ns": guard_ns,
            "checks_per_request": CHECKS_PER_REQUEST,
            "request_p50_ms": p50_ms,
            "overhead_fraction": overhead_fraction,
        },
        "chaos": _run_chaos_cell(engine),
    }


def check_smoke(report: dict) -> None:
    guard = report["guard"]
    assert guard["overhead_fraction"] < 0.01, (
        f"disabled fault guard must cost < 1% of request latency, measured "
        f"{guard['overhead_fraction']:.2%} ({guard['per_check_ns']:.0f} ns/check "
        f"x {guard['checks_per_request']} vs {guard['request_p50_ms']:.2f} ms p50)"
    )
    chaos = report["chaos"]
    assert chaos["all_digests_equal_fault_free"], (
        "chaos recovery returned different bytes than a fault-free run"
    )
    assert chaos["forward_faults_fired"] >= 1, "no fused forward was poisoned"
    assert chaos["socket_faults_fired"] >= 1, "no socket read was dropped"
    assert chaos["coalesce_isolations"] >= 1, (
        "isolation replay never ran — the chaos cell is vacuous"
    )


def test_fault_guard_and_chaos_recovery():
    report = run_report(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    check_smoke(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert guard overhead < 1% and chaos digest equality",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke or os.environ.get("REPRO_BENCH_SMOKE") == "1"
    report = run_report(smoke=smoke)
    print(json.dumps(report, indent=2))
    if smoke:
        check_smoke(report)
        print("smoke checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
