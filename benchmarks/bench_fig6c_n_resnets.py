"""Fig. 6(c): CamAL performance vs the number of ResNets in the ensemble.

Paper shape: classification score stays stable; localization peaks around
4-5 ResNets and is minimal with a single one.
"""

import repro.experiments as ex


def test_fig6c_ensemble_size(benchmark, preset):
    result = benchmark.pedantic(
        ex.run_ensemble_size,
        args=(preset,),
        kwargs={"corpus_name": "ukdale", "appliances": ["kettle"], "sizes": (1, 2)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    assert [n for n, _, _ in result.points] == [1, 2]
    for _, f1, balacc in result.points:
        assert 0.0 <= f1 <= 1.0
        assert 0.0 <= balacc <= 1.0
