"""Serving-daemon throughput: cross-request coalescing on vs. off.

Boots a real :class:`~repro.serving.server.ServingDaemon` (in-process,
ephemeral port) and drives it with N synchronous clients, each scoring
series after series over its own TCP connection.  The engine lock
serializes forwards, so daemon throughput is decided by how many
requests share each forward: with coalescing the cohort of concurrent
requests stacks into one fused call per cycle, without it every request
pays its own serialized forward.  The benchmark measures that directly —
aggregate windows/s and client-observed p50/p99 latency per
(client count, coalesce) cell, plus the daemon's own coalesced-batch
histogram.

``--smoke`` (or ``REPRO_BENCH_SMOKE=1``) runs the 8-client A/B only and
asserts the load-bearing claim: coalesced aggregate throughput is at
least **1.3x** the uncoalesced baseline at 8 clients.

Run standalone for the JSON report::

    PYTHONPATH=src python benchmarks/bench_serving_daemon.py [--smoke]

or through pytest alongside the other paper benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_daemon.py -s
"""

import argparse
import ctypes
import json
import os
import sys
import threading
import time

# Layer 1 of BLAS pinning: only effective when this module is the entry
# point (env is read once, at BLAS load).  Layer 2 below handles the
# pytest case where numpy is already imported.
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")
os.environ.setdefault("OMP_NUM_THREADS", "1")

import numpy as np

from repro.core import CamAL, ResNetConfig, ResNetEnsemble, ResNetTSC
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ServeConfig,
    ServingClient,
    ServingDaemon,
)

WINDOW = 128
STRIDE = 64
N_MODELS = 3
#: Series length giving 2 windows per request — small requests are the
#: regime where coalescing matters (per-forward overhead dominates).
SERIES_LENGTH = WINDOW + STRIDE
WINDOWS_PER_REQUEST = 2
#: Coalescer linger; generous so a full client cohort always merges.
MAX_WAIT_US = 5000

CLIENT_COUNTS = (1, 4, 8)
REQUESTS_PER_CLIENT = 20
SMOKE_CLIENTS = 8
SMOKE_REQUESTS_PER_CLIENT = 30


def _pin_blas_single_thread() -> bool:
    """Pin the loaded BLAS to one thread, like a serving deployment would.

    Multithreaded GEMM only kicks in above a size threshold, so on a
    small CI box it inflates exactly the *coalesced* batches this
    benchmark measures: the big stacked GEMM fans out worker threads
    that oversubscribe the cores the handler/coalescer threads need,
    while the uncoalesced baseline's tiny GEMMs stay single-threaded.
    Pinning removes that asymmetry (and is standard practice for
    thread-per-connection servers).  Returns whether a knob was found.
    """
    symbols = (
        "scipy_openblas_set_num_threads64_",
        "scipy_openblas_set_num_threads",
        "openblas_set_num_threads64_",
        "openblas_set_num_threads",
    )
    try:
        with open("/proc/self/maps") as fh:
            libs = sorted(
                {
                    line.split()[-1]
                    for line in fh
                    if "openblas" in line.lower() and ".so" in line.split()[-1]
                }
            )
    except OSError:
        return False
    pinned = False
    for path in libs:
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for sym in symbols:
            fn = getattr(lib, sym, None)
            if fn is not None:
                fn(1)
                pinned = True
                break
    return pinned


def _build_camal() -> CamAL:
    models = [
        ResNetTSC(ResNetConfig(kernel_size=k, filters=(8, 16, 16), seed=i))
        for i, k in enumerate((5, 7, 9)[:N_MODELS])
    ]
    for model in models:
        model.eval()
    # detection_threshold=0 keeps every window on the fused CAM path —
    # the detected-heavy regime serving cost stories are about.
    return CamAL(ResNetEnsemble(models), detection_threshold=0.0)


def _build_engine() -> InferenceEngine:
    engine = InferenceEngine(
        EngineConfig(window=WINDOW, stride=STRIDE, backend="im2col")
    )
    engine.register("kettle", _build_camal())
    engine.warmup()
    return engine


def _run_cell(engine, n_clients: int, coalesce: bool, requests_per_client: int):
    """One (client count, coalesce) cell: fresh daemon, N looping clients."""
    config = ServeConfig(
        port=0,
        coalesce=coalesce,
        # Flush the instant a full cohort is stacked instead of sitting
        # out the rest of the linger.
        max_batch_windows=max(1, n_clients * WINDOWS_PER_REQUEST),
        max_wait_us=MAX_WAIT_US,
        queue_depth=max(64, 4 * n_clients),
    )
    rng = np.random.default_rng(0)
    all_series = [
        (rng.random(SERIES_LENGTH).astype(np.float32) * 2000.0)
        for _ in range(n_clients)
    ]
    latencies = [[] for _ in range(n_clients)]
    coalesced = [[] for _ in range(n_clients)]
    errors = []
    with ServingDaemon(engine, config) as daemon:
        barrier = threading.Barrier(n_clients + 1)

        def worker(i):
            try:
                with ServingClient(daemon.host, daemon.port) as client:
                    client.ping()
                    barrier.wait()
                    for _ in range(requests_per_client):
                        start = time.perf_counter()
                        result = client.score_series("kettle", all_series[i])
                        latencies[i].append(time.perf_counter() - start)
                        coalesced[i].append(result.coalesced_requests)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"client {i}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        wall_start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start
        hist = daemon.metrics.snapshot()["coalesce"]["hist"]
    if errors:
        raise RuntimeError("; ".join(errors))
    flat_ms = np.sort(np.concatenate(latencies)) * 1e3
    merged = np.concatenate(coalesced)
    n_requests = n_clients * requests_per_client
    return {
        "clients": n_clients,
        "coalesce": coalesce,
        "requests": n_requests,
        "windows_per_request": WINDOWS_PER_REQUEST,
        "wall_s": wall,
        "agg_windows_per_sec": n_requests * WINDOWS_PER_REQUEST / wall,
        "requests_per_sec": n_requests / wall,
        "latency_ms": {
            "p50": float(np.percentile(flat_ms, 50)),
            "p99": float(np.percentile(flat_ms, 99)),
            "mean": float(flat_ms.mean()),
        },
        "mean_coalesced_requests": float(merged.mean()),
        "max_coalesced_requests": int(merged.max()),
        "coalesce_hist": hist,
    }


def run_report(smoke: bool = False) -> dict:
    blas_pinned = _pin_blas_single_thread()
    engine = _build_engine()
    if smoke:
        cells = [(SMOKE_CLIENTS, False), (SMOKE_CLIENTS, True)]
        requests_per_client = SMOKE_REQUESTS_PER_CLIENT
    else:
        cells = [(n, mode) for n in CLIENT_COUNTS for mode in (False, True)]
        requests_per_client = REQUESTS_PER_CLIENT
    rows = [
        _run_cell(engine, n_clients, coalesce, requests_per_client)
        for n_clients, coalesce in cells
    ]
    report = {
        "benchmark": "serving_daemon",
        "window": WINDOW,
        "stride": STRIDE,
        "n_models": N_MODELS,
        "max_wait_us": MAX_WAIT_US,
        "blas_pinned": blas_pinned,
        "smoke": smoke,
        "rows": rows,
    }
    by_key = {(row["clients"], row["coalesce"]): row for row in rows}
    base = by_key.get((SMOKE_CLIENTS, False))
    merged = by_key.get((SMOKE_CLIENTS, True))
    if base and merged:
        report["coalescing_gain_at_8_clients"] = (
            merged["agg_windows_per_sec"] / base["agg_windows_per_sec"]
        )
    return report


def check_smoke(report: dict) -> None:
    gain = report["coalescing_gain_at_8_clients"]
    merged = next(
        row
        for row in report["rows"]
        if row["coalesce"] and row["clients"] == SMOKE_CLIENTS
    )
    assert merged["max_coalesced_requests"] >= 2, (
        "coalescing never merged concurrent requests — the A/B is vacuous"
    )
    assert merged["latency_ms"]["p99"] > 0
    assert gain >= 1.3, (
        f"coalesced aggregate throughput must be >= 1.3x uncoalesced at "
        f"{SMOKE_CLIENTS} clients, measured {gain:.2f}x"
    )


def test_daemon_coalescing_gain():
    report = run_report(smoke=True)
    print()
    print(json.dumps(report, indent=2))
    check_smoke(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="8-client A/B only; assert the >=1.3x coalescing gain",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke or os.environ.get("REPRO_BENCH_SMOKE") == "1"
    report = run_report(smoke=smoke)
    print(json.dumps(report, indent=2))
    if smoke:
        check_smoke(report)
        print("smoke checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
