"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at the
``bench`` preset (same code paths as the paper-scale runs, scaled down so
the whole suite finishes in minutes).  The printed rows/series mirror what
the paper reports; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

import pytest

import repro.experiments as ex


@pytest.fixture(scope="session")
def preset():
    return ex.get_preset("bench")


@pytest.fixture(scope="session")
def ukdale(preset):
    return ex.build_corpus("ukdale", preset)


@pytest.fixture(scope="session")
def ideal(preset):
    return ex.build_corpus("ideal", preset)


@pytest.fixture(scope="session")
def edf_weak(preset):
    return ex.build_corpus("edf_weak", preset)


@pytest.fixture(scope="session")
def edf_ev(preset):
    return ex.build_corpus("edf_ev", preset)
