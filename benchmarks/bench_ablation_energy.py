"""Ablation: constant-P_a (§IV-C) vs adaptive (§V-I) energy reconstruction.

The paper's closing remark — "more advanced post-processing methods are
needed to refine the estimated consumption further" — motivates the
baseline-subtracted estimator; this bench quantifies the MAE/MR effect of
swapping it in on top of identical CamAL status predictions.
"""

import numpy as np

import repro.experiments as ex
from repro.core import estimate_power, estimate_power_adaptive
from repro.metrics import mae, matching_ratio


def _run(preset):
    corpus = ex.build_corpus("ukdale", preset)
    results = []
    for appliance in ("kettle", "dishwasher"):
        case = ex.case_windows(corpus, appliance, preset.window, split_seed=0)
        _, camal = ex.run_camal(case, preset, seed=0)
        status = camal.predict_status(case.test.inputs)
        spec = case.spec
        constant = estimate_power(status, spec.avg_power_watts, case.test.aggregate_watts)
        adaptive = estimate_power_adaptive(
            status, case.test.aggregate_watts, max_power_watts=3 * spec.avg_power_watts
        )
        truth = case.test.power_watts
        results.append(
            (
                appliance,
                mae(truth, constant),
                mae(truth, adaptive),
                matching_ratio(truth, constant),
                matching_ratio(truth, adaptive),
            )
        )
    return results


def test_energy_estimation_ablation(benchmark, preset):
    results = benchmark.pedantic(_run, args=(preset,), rounds=1, iterations=1)
    print()
    print(ex.render_table(
        ["Case", "MAE const", "MAE adaptive", "MR const", "MR adaptive"],
        [list(r) for r in results],
        title="Ablation — §IV-C constant P_a vs §V-I adaptive energy",
    ))
    for _, mae_c, mae_a, mr_c, mr_a in results:
        assert np.isfinite([mae_c, mae_a, mr_c, mr_a]).all()
        assert 0.0 <= mr_c <= 1.0 and 0.0 <= mr_a <= 1.0
    # The adaptive estimator should help (or at worst tie) on average.
    avg_const = np.mean([r[1] for r in results])
    avg_adapt = np.mean([r[2] for r in results])
    assert avg_adapt <= avg_const * 1.25  # never catastrophically worse