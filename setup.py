"""Setup shim: metadata lives in setup.cfg.

A classic setup.py (rather than PEP 517 metadata in pyproject.toml) keeps
``pip install -e .`` working in offline environments that lack the
``wheel`` package needed for PEP 660 editable installs.
"""

from setuptools import setup

setup()
